package wire

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
)

// scriptedService fails each call with the scripted errors in order,
// then succeeds forever. Only the methods the tests drive are scripted;
// everything else delegates to the embedded zero Loopback (and would
// panic if reached, which is the point).
type scriptedService struct {
	Loopback
	errs    []error // consumed front to back; nil entry = success
	calls   int
	claimed int
}

func (s *scriptedService) next() error {
	if s.calls < len(s.errs) {
		err := s.errs[s.calls]
		s.calls++
		return err
	}
	s.calls++
	return nil
}

func (s *scriptedService) Status(id ids.PhotoID) (*ledger.StatusProof, error) {
	if err := s.next(); err != nil {
		return nil, err
	}
	return &ledger.StatusProof{ID: id, State: ledger.StateActive}, nil
}

func (s *scriptedService) Claim(req *ClaimRequest) (ledger.Receipt, error) {
	if err := s.next(); err != nil {
		return ledger.Receipt{}, err
	}
	s.claimed++
	return ledger.Receipt{}, nil
}

// noSleep counts backoffs instead of sleeping.
func noSleep(sleeps *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *sleeps = append(*sleeps, d) }
}

func testID(t *testing.T) ids.PhotoID {
	t.Helper()
	id, err := ids.New(1)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestRetryIdempotentRetriesTransientFailure(t *testing.T) {
	transient := &TransportError{Err: errors.New("conn reset")}
	svc := &scriptedService{errs: []error{transient, transient}}
	var sleeps []time.Duration
	rc := NewRetryClient(svc, RetryConfig{Sleep: noSleep(&sleeps)})
	if _, err := rc.Status(testID(t)); err != nil {
		t.Fatalf("status after two transient failures: %v", err)
	}
	if svc.calls != 3 {
		t.Errorf("attempts %d, want 3", svc.calls)
	}
	if len(sleeps) != 2 {
		t.Errorf("backoffs %d, want 2", len(sleeps))
	}
	st := rc.Stats()
	if st.Retries != 2 || st.Calls != 1 || st.Attempts != 3 {
		t.Errorf("stats %+v", st)
	}
}

func TestRetryNonIdempotentNotRetriedPostSend(t *testing.T) {
	// A post-send transport failure: the claim may have been recorded.
	postSend := &TransportError{PreSend: false, Err: errors.New("reset mid-response")}
	svc := &scriptedService{errs: []error{postSend}}
	var sleeps []time.Duration
	rc := NewRetryClient(svc, RetryConfig{Sleep: noSleep(&sleeps)})
	if _, err := rc.Claim(&ClaimRequest{}); err == nil {
		t.Fatal("post-send claim failure swallowed")
	}
	if svc.calls != 1 {
		t.Errorf("claim attempted %d times, want exactly 1 (no replay risk)", svc.calls)
	}
}

func TestRetryNonIdempotentRetriedPreSend(t *testing.T) {
	preSend := &TransportError{PreSend: true, Err: errors.New("connection refused")}
	svc := &scriptedService{errs: []error{preSend, preSend}}
	var sleeps []time.Duration
	rc := NewRetryClient(svc, RetryConfig{Sleep: noSleep(&sleeps)})
	if _, err := rc.Claim(&ClaimRequest{}); err != nil {
		t.Fatalf("claim after pre-send failures: %v", err)
	}
	if svc.claimed != 1 || svc.calls != 3 {
		t.Errorf("claimed=%d calls=%d, want 1/3", svc.claimed, svc.calls)
	}
}

func TestRetryProtocolErrorsNotRetried(t *testing.T) {
	svc := &scriptedService{errs: []error{&Error{Code: 404, Message: "no such claim"}}}
	rc := NewRetryClient(svc, RetryConfig{Sleep: func(time.Duration) {}})
	if _, err := rc.Status(testID(t)); ErrStatus(err) != 404 {
		t.Fatalf("got %v, want the 404 through unretried", err)
	}
	if svc.calls != 1 {
		t.Errorf("definitive answer retried: %d calls", svc.calls)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	down := &TransportError{Err: errors.New("down")}
	errs := make([]error, 100)
	for i := range errs {
		errs[i] = down
	}
	svc := &scriptedService{errs: errs}
	rc := NewRetryClient(svc, RetryConfig{
		MaxAttempts:  4,
		BudgetCap:    3, // three retry tokens total
		BudgetRefill: 1,
		Sleep:        func(time.Duration) {},
	})
	id := testID(t)
	// First call: 1 try + 3 retries, draining the budget.
	if _, err := rc.Status(id); err == nil {
		t.Fatal("down service succeeded")
	}
	after := svc.calls
	if after != 4 {
		t.Fatalf("first call made %d attempts, want 4", after)
	}
	// Budget empty: subsequent calls fail after a single attempt.
	if _, err := rc.Status(id); err == nil {
		t.Fatal("down service succeeded")
	}
	if svc.calls != after+1 {
		t.Errorf("budget-empty call made %d extra attempts, want 1", svc.calls-after)
	}
	if rc.Stats().BudgetDenied == 0 {
		t.Error("budget denial not counted")
	}
	// A success refills one token; the next failure earns one retry.
	svc.errs = svc.errs[:svc.calls] // next call succeeds
	if _, err := rc.Status(id); err != nil {
		t.Fatalf("recovery call: %v", err)
	}
	svc.errs = append(svc.errs[:svc.calls], down, down, down, down)
	before := svc.calls
	if _, err := rc.Status(id); err == nil {
		t.Fatal("down again but succeeded")
	}
	if got := svc.calls - before; got != 2 {
		t.Errorf("refilled budget allowed %d attempts, want 2 (1 try + 1 earned retry)", got)
	}
}

func TestRetryBackoffSeededAndCapped(t *testing.T) {
	down := &TransportError{Err: errors.New("down")}
	run := func(seed int64) []time.Duration {
		errs := make([]error, 10)
		for i := range errs {
			errs[i] = down
		}
		var sleeps []time.Duration
		rc := NewRetryClient(&scriptedService{errs: errs}, RetryConfig{
			MaxAttempts: 6,
			BaseBackoff: 10 * time.Millisecond,
			MaxBackoff:  40 * time.Millisecond,
			BudgetCap:   100,
			Seed:        seed,
			Sleep:       noSleep(&sleeps),
		})
		_, _ = rc.Status(ids.PhotoID{})
		return sleeps
	}
	a, b := run(1), run(1)
	if len(a) != 5 {
		t.Fatalf("backoffs %d, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("backoff %d differs across same-seed runs: %v vs %v", i, a[i], b[i])
		}
		if a[i] > 40*time.Millisecond {
			t.Errorf("backoff %d = %v exceeds cap", i, a[i])
		}
		if a[i] < 5*time.Millisecond {
			t.Errorf("backoff %d = %v below half the base", i, a[i])
		}
	}
	// Growth up to the cap: later backoffs jitter within [cap/2, cap].
	last := a[len(a)-1]
	if last < 20*time.Millisecond {
		t.Errorf("capped backoff %v fell below cap/2", last)
	}
}

// TestRetryAttemptDeadline drives a real Client against a hung server:
// the per-attempt deadline must bound every attempt, so the whole call
// completes orders of magnitude sooner than the old hardcoded 30s
// client timeout would allow.
func TestRetryAttemptDeadline(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()

	c := NewClient(srv.URL, "")
	rc := NewRetryClient(c, RetryConfig{
		MaxAttempts:    2,
		AttemptTimeout: 50 * time.Millisecond,
		Sleep:          func(time.Duration) {},
	})
	start := time.Now()
	_, err := rc.Status(testID(t))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("hung server produced a success")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("call took %v; per-attempt deadline not enforced", elapsed)
	}
	if rc.Stats().Attempts != 2 {
		t.Errorf("attempts %d, want 2 (deadline errors on idempotent calls retry)", rc.Stats().Attempts)
	}
}

// TestClientConfigurableTimeout pins that ClientOptions.Timeout
// replaces the old hardcoded 30s.
func TestClientConfigurableTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	c := NewClientOpts(srv.URL, "", ClientOptions{Timeout: 40 * time.Millisecond})
	start := time.Now()
	if _, err := c.Status(testID(t)); err == nil {
		t.Fatal("hung server produced a success")
	}
	if e := time.Since(start); e > time.Second {
		t.Fatalf("timed out after %v, want ~40ms", e)
	}
}
