package wire

import (
	"crypto/ed25519"
	"crypto/sha256"
	"testing"

	"irs/internal/bloom"
	"irs/internal/ledger"
)

// Loopback must behave exactly like the HTTP client against the same
// ledger; these tests pin the parity for the paths the experiments use.
func TestLoopbackParity(t *testing.T) {
	l, err := ledger.New(ledger.Config{ID: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lb := &Loopback{L: l}

	k := newKeypair(t)
	h := sha256.Sum256([]byte("loopback"))
	rec, err := lb.Claim(&ClaimRequest{
		ContentHash: h[:],
		PubKey:      k.pub,
		HashSig:     ed25519.Sign(k.priv, ledger.ClaimMsg(h)),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Keys.
	keys, err := lb.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if keys.LedgerID != 7 || len(keys.SigningKey) != ed25519.PublicKeySize {
		t.Errorf("keys: %+v", keys)
	}

	// Seq + Apply.
	seq, err := lb.Seq(rec.ID)
	if err != nil || seq != 0 {
		t.Fatalf("seq %d err %v", seq, err)
	}
	sig := ed25519.Sign(k.priv, ledger.OpMsg(rec.ID, ledger.OpRevoke, 1))
	if err := lb.Apply(rec.ID, ledger.OpRevoke, 1, sig); err != nil {
		t.Fatal(err)
	}
	p, err := lb.Status(rec.ID)
	if err != nil || p.State != ledger.StateRevoked {
		t.Fatalf("status %v err %v", p, err)
	}

	// Filter + delta.
	if _, err := l.BuildSnapshot(); err != nil {
		t.Fatal(err)
	}
	epoch, f, err := lb.Filter()
	if err != nil || epoch != 1 {
		t.Fatalf("filter epoch %d err %v", epoch, err)
	}
	if !f.Test(ledger.FilterKey(rec.ID)) {
		t.Error("revoked claim missing from loopback filter")
	}
	if _, err := l.BuildSnapshot(); err != nil {
		t.Fatal(err)
	}
	delta, latest, err := lb.FilterDelta(epoch)
	if err != nil || latest != 2 {
		t.Fatalf("delta latest %d err %v", latest, err)
	}
	if err := bloom.Apply(f, delta); err != nil {
		t.Fatal(err)
	}

	// PermanentRevoke (trusted in-process caller).
	if err := lb.PermanentRevoke(rec.ID); err != nil {
		t.Fatal(err)
	}
	p, err = lb.Status(rec.ID)
	if err != nil || p.State != ledger.StatePermanentlyRevoked {
		t.Fatalf("after permanent revoke: %v err %v", p, err)
	}

	// Bad hash length.
	if _, err := lb.Claim(&ClaimRequest{ContentHash: []byte("short")}); err == nil {
		t.Error("short hash accepted by loopback")
	}
}
