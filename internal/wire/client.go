package wire

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"irs/internal/bloom"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/obs"
	"irs/internal/tsa"
)

// DefaultTimeout bounds one request/response exchange when the caller
// does not configure one. Serving-path callers that care about tail
// latency (the proxy, the retry layer) configure something far shorter;
// this is the safety net for interactive tools.
const DefaultTimeout = 30 * time.Second

// ClientOptions tunes a Client beyond the defaults.
type ClientOptions struct {
	// Timeout bounds each request/response exchange. 0 means
	// DefaultTimeout; negative disables the deadline entirely (the
	// caller's context is then the only bound).
	Timeout time.Duration
	// HTTPClient overrides the underlying transport, e.g. to share a
	// connection pool across clients. Its own Timeout field is left
	// alone; the Client applies its deadline per request via context.
	HTTPClient *http.Client
	// Obs, when non-nil, interns per-RPC latency histograms and
	// result-class counters (irs_wire_client_*) in the given registry.
	// nil disables client instrumentation at zero per-call cost.
	Obs *obs.Registry
	// Codec selects the hot-RPC encoding. CodecJSON (the zero value)
	// speaks the compatibility protocol everywhere; CodecBinary
	// advertises IRSW1 on Status/StatusBatch/FilterSync and upgrades
	// request bodies once the server has been seen to speak it. The
	// choice is invisible to callers: same Service surface, same
	// results, same error classification.
	Codec Codec
}

// NewTransport returns the http.Transport the package's clients use
// when the caller does not supply one: DefaultTransport semantics with
// the idle pool sized for grouped batch fan-out. The stock
// MaxIdleConnsPerHost of 2 makes a proxy running 8+ batch workers
// against one ledger discard most connections at return time, paying a
// fresh TCP handshake per page; the serving path keeps every worker's
// connection warm instead.
func NewTransport() *http.Transport {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 256
	tr.MaxIdleConnsPerHost = 64
	tr.IdleConnTimeout = 90 * time.Second
	return tr
}

// clientRPCs is the fixed RPC name set; instruments are interned once
// per client at construction, never per call.
var clientRPCs = []string{
	"claim", "op", "status", "status_batch", "seq",
	"keys", "filter", "filter_delta", "filter_sync", "admin_revoke",
}

// rpcInstruments is one RPC's pre-interned series.
type rpcInstruments struct {
	lat                     *obs.Histogram
	ok, protocol, transport *obs.Counter
}

// clientObs maps RPC names to instruments; a nil *clientObs is the
// disabled state.
type clientObs struct {
	rpcs map[string]*rpcInstruments
	// codec[0] counts responses decoded as JSON, codec[1] as IRSW1;
	// rxBytes mirrors that split for response payload bytes where the
	// size is known (always, for binary).
	codec   [2]*obs.Counter
	rxBytes [2]*obs.Counter
}

func newClientObs(reg *obs.Registry) *clientObs {
	co := &clientObs{rpcs: make(map[string]*rpcInstruments, len(clientRPCs))}
	for _, rpc := range clientRPCs {
		l := obs.L("rpc", rpc)
		co.rpcs[rpc] = &rpcInstruments{
			lat:       reg.Histogram("irs_wire_client_seconds", nil, l),
			ok:        reg.Counter("irs_wire_client_requests_total", l, obs.L("class", "ok")),
			protocol:  reg.Counter("irs_wire_client_requests_total", l, obs.L("class", "protocol")),
			transport: reg.Counter("irs_wire_client_requests_total", l, obs.L("class", "transport")),
		}
	}
	for i, name := range [2]string{"json", "binary"} {
		l := obs.L("codec", name)
		co.codec[i] = reg.Counter("irs_wire_client_codec_total", l)
		co.rxBytes[i] = reg.Counter("irs_wire_client_rx_bytes_total", l)
	}
	return co
}

// observeCodec records one decoded response's encoding and size; n < 0
// means the size is unknown.
func (co *clientObs) observeCodec(binary bool, n int) {
	if co == nil {
		return
	}
	i := 0
	if binary {
		i = 1
	}
	co.codec[i].Inc()
	if n >= 0 {
		co.rxBytes[i].Add(uint64(n))
	}
}

// observe records one finished RPC. Classes: "ok" for a successful
// exchange, "transport" when the request or response failed to move
// over the network, "protocol" for everything the server (or response
// validation) rejected.
func (co *clientObs) observe(rpc string, start time.Time, err error) {
	if co == nil {
		return
	}
	ri := co.rpcs[rpc]
	if ri == nil {
		return
	}
	ri.lat.Observe(time.Since(start).Seconds())
	var te *TransportError
	switch {
	case err == nil:
		ri.ok.Inc()
	case errors.As(err, &te):
		ri.transport.Inc()
	default:
		ri.protocol.Inc()
	}
}

// TransportError marks a failure moving a request or response over the
// network, as opposed to a protocol-level *Error answered by the
// server. PreSend reports that the failure happened before the request
// could have reached the server — dial/connection-refused class — which
// makes a retry safe even for non-idempotent verbs like Claim.
type TransportError struct {
	PreSend bool
	Err     error
}

// Error implements the error interface.
func (e *TransportError) Error() string { return fmt.Sprintf("wire: transport: %v", e.Err) }

// Unwrap exposes the underlying network error.
func (e *TransportError) Unwrap() error { return e.Err }

// preSendFailure reports whether err shows the request never left the
// client: a dial-phase failure means no connection existed to carry it.
func preSendFailure(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// transportErr wraps a client-side HTTP failure with its pre-send
// classification, preserving the original chain.
func transportErr(err error) error {
	return &TransportError{PreSend: preSendFailure(err), Err: err}
}

// Client speaks the ledger protocol. It is safe for concurrent use.
type Client struct {
	base    string
	http    *http.Client
	admin   string
	timeout time.Duration
	// ctx, when non-nil, is the base context every request derives from
	// (WithContext); nil means context.Background().
	ctx context.Context
	// obs holds the pre-interned per-RPC instruments; nil when the
	// client was built without ClientOptions.Obs.
	obs *clientObs
	// codec is the preferred hot-RPC encoding; binOK records whether
	// the server has advertised IRSW1 (pointer so WithContext copies
	// share the negotiation state).
	codec Codec
	binOK *atomic.Bool
}

// NewClient creates a client for the ledger at base (e.g.
// "http://127.0.0.1:8330"). adminToken may be empty for non-appeals
// callers.
func NewClient(base string, adminToken string) *Client {
	return NewClientOpts(base, adminToken, ClientOptions{})
}

// NewClientOpts creates a client with explicit options.
func NewClientOpts(base string, adminToken string, opts ClientOptions) *Client {
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{Transport: NewTransport()}
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	var co *clientObs
	if opts.Obs != nil {
		co = newClientObs(opts.Obs)
	}
	return &Client{
		base: base, admin: adminToken, http: hc, timeout: timeout, obs: co,
		codec: opts.Codec, binOK: new(atomic.Bool),
	}
}

// Codec reports the client's preferred hot-RPC encoding.
func (c *Client) Codec() Codec { return c.codec }

// acceptValue is the Accept header a binary-preferring client sends:
// IRSW1 first, JSON as the declared fallback.
const acceptValue = ContentTypeBinary + ", " + ContentTypeJSON

// noteWire records the server's codec advertisement; once a response
// has carried it, request bodies may be encoded in IRSW1.
func (c *Client) noteWire(r *http.Response) {
	if r.Header.Get(WireHeader) == WireV1 {
		c.binOK.Store(true)
	}
}

// Base returns the base URL the client targets.
func (c *Client) Base() string { return c.base }

// WithContext returns a copy of the client whose requests derive from
// ctx — cancel the context and in-flight calls abort. The retry layer
// uses this to enforce per-attempt deadlines.
func (c *Client) WithContext(ctx context.Context) Service {
	cp := *c
	cp.ctx = ctx
	return &cp
}

// newRequest builds a request carrying the client's context and
// deadline. The returned cancel must be called once the response body
// is fully consumed.
func (c *Client) newRequest(method, path string, body io.Reader) (*http.Request, context.CancelFunc, error) {
	ctx := c.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	cancel := context.CancelFunc(func() {})
	if c.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
	}
	hr, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	return hr, cancel, nil
}

func (c *Client) postJSON(rpc, path string, req, resp any, headers map[string]string) (err error) {
	if c.obs != nil {
		start := time.Now()
		defer func() { c.obs.observe(rpc, start, err) }()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("wire: encoding request: %w", err)
	}
	hr, cancel, err := c.newRequest(http.MethodPost, path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer cancel()
	hr.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		hr.Header.Set(k, v)
	}
	r, err := c.http.Do(hr)
	if err != nil {
		return fmt.Errorf("wire: POST %s: %w", path, transportErr(err))
	}
	c.obs.observeCodec(false, int(r.ContentLength))
	return decodeResponse(r, resp)
}

func (c *Client) getJSON(rpc, path string, resp any) (err error) {
	if c.obs != nil {
		start := time.Now()
		defer func() { c.obs.observe(rpc, start, err) }()
	}
	hr, cancel, err := c.newRequest(http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	defer cancel()
	r, err := c.http.Do(hr)
	if err != nil {
		return fmt.Errorf("wire: GET %s: %w", path, transportErr(err))
	}
	c.obs.observeCodec(false, int(r.ContentLength))
	return decodeResponse(r, resp)
}

// frameErr classifies a frame decode failure: a truncated or CRC-bad
// frame is indistinguishable from bytes lost in flight, so it becomes
// a TransportError and the retry layer's idempotency rules decide
// whether to replay. Anything else passes through unchanged.
func frameErr(err error) error {
	if errors.Is(err, ErrFrameTruncated) || errors.Is(err, ErrFrameCorrupt) {
		return &TransportError{Err: err}
	}
	return err
}

// drainClose empties (bounded) and closes a response body so the
// connection stays reusable; the binary paths share decodeResponse's
// keep-alive contract.
func drainClose(body io.ReadCloser, limit int64) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, limit))
	body.Close()
}

// readBodyPooled drains r into a pooled buffer. Steady state this
// allocates nothing: the buffer grows to the largest response seen and
// is then reused. A body exceeding max is a truncation-class transport
// failure (the peer is not speaking our protocol bounds).
func readBodyPooled(r io.Reader, max int) (*[]byte, error) {
	bp := GetBuf()
	b := *bp
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if len(b) > max {
			*bp = b
			PutBuf(bp)
			return nil, ErrFrameCorrupt
		}
		if err == io.EOF {
			*bp = b
			return bp, nil
		}
		if err != nil {
			*bp = b
			PutBuf(bp)
			return nil, err
		}
	}
}

// getBinary issues a GET advertising IRSW1 and dispatches the response
// to exactly one decoder by Content-Type. onBinary receives the whole
// framed body in a pooled buffer, valid only during the call; onJSON
// is the compatibility path and receives the open response (it must
// fully consume the body, e.g. via decodeResponse).
func (c *Client) getBinary(rpc, path string, maxResp int, onBinary func(body []byte) error, onJSON func(r *http.Response) error) (err error) {
	if c.obs != nil {
		start := time.Now()
		defer func() { c.obs.observe(rpc, start, err) }()
	}
	hr, cancel, err := c.newRequest(http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	defer cancel()
	hr.Header.Set("Accept", acceptValue)
	r, err := c.http.Do(hr)
	if err != nil {
		return fmt.Errorf("wire: GET %s: %w", path, transportErr(err))
	}
	c.noteWire(r)
	if r.StatusCode/100 != 2 {
		return decodeResponse(r, nil)
	}
	if !IsBinaryContent(r.Header.Get("Content-Type")) {
		c.obs.observeCodec(false, int(r.ContentLength))
		return onJSON(r)
	}
	defer drainClose(r.Body, int64(maxResp))
	bp, rerr := readBodyPooled(r.Body, maxResp)
	if rerr != nil {
		return fmt.Errorf("wire: GET %s: %w", path, transportErr(rerr))
	}
	defer PutBuf(bp)
	c.obs.observeCodec(true, len(*bp))
	if derr := onBinary(*bp); derr != nil {
		return fmt.Errorf("wire: GET %s: %w", path, derr)
	}
	return nil
}

// postNegotiated runs one body-bearing hot RPC under codec
// negotiation. jsonReq builds the fallback request value (called only
// when a JSON body is actually sent); encodeBinary appends the IRSW1
// request frame. The request body is binary only once the server has
// advertised IRSW1; if a rolled-back server then rejects a binary body
// with a 4xx and no advertisement, the call is retried once re-encoded
// as JSON — safe regardless of idempotency, because the old server
// refused the body at parse time, before any state change.
func (c *Client) postNegotiated(rpc, path string, jsonReq func() any, encodeBinary func(dst []byte) []byte, onBinary func(body []byte) error, onJSON func(r *http.Response) error) error {
	sendBinary := c.binOK.Load()
	advertised, err := c.postOnce(rpc, path, jsonReq, encodeBinary, sendBinary, onBinary, onJSON)
	if sendBinary && !advertised {
		var we *Error
		if errors.As(err, &we) && we.Code >= 400 && we.Code < 500 {
			c.binOK.Store(false)
			_, err = c.postOnce(rpc, path, jsonReq, encodeBinary, false, onBinary, onJSON)
		}
	}
	return err
}

// postOnce performs one negotiated POST exchange, reporting whether
// the response advertised IRSW1 alongside the call's outcome.
func (c *Client) postOnce(rpc, path string, jsonReq func() any, encodeBinary func(dst []byte) []byte, sendBinary bool, onBinary func(body []byte) error, onJSON func(r *http.Response) error) (advertised bool, err error) {
	if c.obs != nil {
		start := time.Now()
		defer func() { c.obs.observe(rpc, start, err) }()
	}
	var body []byte
	ct := ContentTypeJSON
	if sendBinary {
		bp := GetBuf()
		defer PutBuf(bp)
		*bp = encodeBinary(*bp)
		body = *bp
		ct = ContentTypeBinary
	} else {
		body, err = json.Marshal(jsonReq())
		if err != nil {
			return false, fmt.Errorf("wire: encoding request: %w", err)
		}
	}
	hr, cancel, err := c.newRequest(http.MethodPost, path, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	defer cancel()
	hr.Header.Set("Content-Type", ct)
	hr.Header.Set("Accept", acceptValue)
	r, err := c.http.Do(hr)
	if err != nil {
		return false, fmt.Errorf("wire: POST %s: %w", path, transportErr(err))
	}
	advertised = r.Header.Get(WireHeader) == WireV1
	c.noteWire(r)
	if r.StatusCode/100 != 2 {
		return advertised, decodeResponse(r, nil)
	}
	if !IsBinaryContent(r.Header.Get("Content-Type")) {
		c.obs.observeCodec(false, int(r.ContentLength))
		return advertised, onJSON(r)
	}
	defer drainClose(r.Body, maxBody)
	bp, rerr := readBodyPooled(r.Body, maxBody)
	if rerr != nil {
		return advertised, fmt.Errorf("wire: POST %s: %w", path, transportErr(rerr))
	}
	defer PutBuf(bp)
	c.obs.observeCodec(true, len(*bp))
	if derr := onBinary(*bp); derr != nil {
		return advertised, fmt.Errorf("wire: POST %s: %w", path, derr)
	}
	return advertised, nil
}

// Claim registers a photo and returns the receipt.
func (c *Client) Claim(req *ClaimRequest) (ledger.Receipt, error) {
	var resp ClaimResponse
	if err := c.postJSON("claim", "/v1/claim", req, &resp, nil); err != nil {
		return ledger.Receipt{}, err
	}
	id, err := ids.Parse(resp.ID)
	if err != nil {
		return ledger.Receipt{}, fmt.Errorf("wire: server returned bad id: %w", err)
	}
	tok, err := tsa.Unmarshal(resp.Timestamp)
	if err != nil {
		return ledger.Receipt{}, fmt.Errorf("wire: server returned bad timestamp: %w", err)
	}
	return ledger.Receipt{ID: id, Timestamp: tok}, nil
}

// Apply submits a signed revoke/unrevoke.
func (c *Client) Apply(id ids.PhotoID, op ledger.Op, seq uint64, sig []byte) error {
	return c.postJSON("op", "/v1/op", &OpRequest{ID: id.String(), Op: int(op), Seq: seq, Sig: sig}, nil, nil)
}

// Status validates a claim, returning the parsed signed proof.
func (c *Client) Status(id ids.PhotoID) (*ledger.StatusProof, error) {
	path := "/v1/status?id=" + url.QueryEscape(id.String())
	if c.codec != CodecBinary {
		var resp StatusResponse
		if err := c.getJSON("status", path, &resp); err != nil {
			return nil, err
		}
		return ledger.UnmarshalProof(resp.Proof)
	}
	var proof *ledger.StatusProof
	err := c.getBinary("status", path, maxBody,
		func(body []byte) error {
			kind, payload, err := DecodeMsg(body, MaxFramePayload)
			if err != nil {
				return frameErr(err)
			}
			if kind != MsgStatusResp {
				return frameErr(ErrFrameCorrupt)
			}
			raw, err := DecodeStatusResp(payload)
			if err != nil {
				return frameErr(err)
			}
			p, perr := ledger.UnmarshalProof(raw)
			if perr != nil {
				return perr
			}
			proof = p
			return nil
		},
		func(r *http.Response) error {
			var resp StatusResponse
			if err := decodeResponse(r, &resp); err != nil {
				return err
			}
			p, perr := ledger.UnmarshalProof(resp.Proof)
			if perr != nil {
				return perr
			}
			proof = p
			return nil
		})
	if err != nil {
		return nil, err
	}
	return proof, nil
}

// StatusBatch validates up to MaxStatusBatch claims in one POST,
// returning parsed proofs in request order. The response is rejected
// unless it carries exactly one well-formed proof per requested
// identifier, each attesting the identifier it was asked about.
func (c *Client) StatusBatch(batch []ids.PhotoID) ([]*ledger.StatusProof, error) {
	if len(batch) == 0 {
		return nil, nil
	}
	if len(batch) > MaxStatusBatch {
		return nil, fmt.Errorf("wire: batch of %d exceeds limit %d", len(batch), MaxStatusBatch)
	}
	if c.codec != CodecBinary {
		req := &StatusBatchRequest{IDs: make([]string, len(batch))}
		for i, id := range batch {
			req.IDs[i] = id.String()
		}
		var resp StatusBatchResponse
		if err := c.postJSON("status_batch", "/v1/status/batch", req, &resp, nil); err != nil {
			return nil, err
		}
		proofs := make([]*ledger.StatusProof, len(batch))
		if err := fillProofs(batch, resp.Proofs, proofs); err != nil {
			return nil, err
		}
		return proofs, nil
	}
	proofs := make([]*ledger.StatusProof, len(batch))
	err := c.postNegotiated("status_batch", "/v1/status/batch",
		func() any {
			req := &StatusBatchRequest{IDs: make([]string, len(batch))}
			for i, id := range batch {
				req.IDs[i] = id.String()
			}
			return req
		},
		func(dst []byte) []byte { return EncodeStatusBatchReq(dst, batch) },
		func(body []byte) error {
			kind, payload, err := DecodeMsg(body, MaxFramePayload)
			if err != nil {
				return frameErr(err)
			}
			if kind != MsgStatusBatchResp {
				return frameErr(ErrFrameCorrupt)
			}
			n, err := DecodeStatusBatchResp(payload, func(i int, raw []byte) error {
				if i >= len(batch) {
					return fmt.Errorf("wire: server returned more proofs than the %d requested", len(batch))
				}
				return checkProof(batch, i, raw, proofs)
			})
			if err != nil {
				return frameErr(err)
			}
			if n != len(batch) {
				return fmt.Errorf("wire: server returned %d proofs for %d ids", n, len(batch))
			}
			return nil
		},
		func(r *http.Response) error {
			var resp StatusBatchResponse
			if err := decodeResponse(r, &resp); err != nil {
				return err
			}
			return fillProofs(batch, resp.Proofs, proofs)
		})
	if err != nil {
		return nil, err
	}
	return proofs, nil
}

// checkProof parses one raw proof, rejects it unless it attests the
// identifier it was asked about, and stores it at index i.
func checkProof(batch []ids.PhotoID, i int, raw []byte, out []*ledger.StatusProof) error {
	p, err := ledger.UnmarshalProof(raw)
	if err != nil {
		return fmt.Errorf("wire: server returned bad proof %d: %w", i, err)
	}
	if p.ID != batch[i] {
		return fmt.Errorf("wire: proof %d attests %s, want %s", i, p.ID, batch[i])
	}
	out[i] = p
	return nil
}

// fillProofs validates a JSON batch response's proofs against the
// request and parses them into out.
func fillProofs(batch []ids.PhotoID, raws [][]byte, out []*ledger.StatusProof) error {
	if len(raws) != len(batch) {
		return fmt.Errorf("wire: server returned %d proofs for %d ids", len(raws), len(batch))
	}
	for i, raw := range raws {
		if err := checkProof(batch, i, raw, out); err != nil {
			return err
		}
	}
	return nil
}

// Seq fetches the current operation sequence for owner-side signing.
func (c *Client) Seq(id ids.PhotoID) (uint64, error) {
	var resp SeqQueryResponse
	if err := c.getJSON("seq", "/v1/seq?id="+url.QueryEscape(id.String()), &resp); err != nil {
		return 0, err
	}
	return resp.Seq, nil
}

// Keys fetches the ledger's verification keys.
func (c *Client) Keys() (*KeysResponse, error) {
	var resp KeysResponse
	if err := c.getJSON("keys", "/v1/keys", &resp); err != nil {
		return nil, err
	}
	if len(resp.SigningKey) != ed25519.PublicKeySize || len(resp.TimestampKey) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("wire: server returned malformed keys")
	}
	return &resp, nil
}

// maxFilterBytes bounds filter downloads; the bootstrap design tops out
// at proxy-held filters, so 1 GiB mirrors the paper's largest
// browser-resident filter.
const maxFilterBytes = 1 << 30

// getRaw issues a GET whose successful body is binary (filters); error
// bodies are still the JSON protocol error.
func (c *Client) getRaw(rpc, path string) (raw []byte, epoch uint64, err error) {
	if c.obs != nil {
		start := time.Now()
		defer func() { c.obs.observe(rpc, start, err) }()
	}
	hr, cancel, err := c.newRequest(http.MethodGet, path, nil)
	if err != nil {
		return nil, 0, err
	}
	defer cancel()
	r, err := c.http.Do(hr)
	if err != nil {
		return nil, 0, fmt.Errorf("wire: GET %s: %w", path, transportErr(err))
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		defer func() { _, _ = io.Copy(io.Discard, io.LimitReader(r.Body, maxBody)) }()
		var e Error
		if jerr := json.NewDecoder(io.LimitReader(r.Body, maxBody)).Decode(&e); jerr == nil && e.Code != 0 {
			return nil, 0, &e
		}
		return nil, 0, &Error{Code: r.StatusCode, Message: r.Status}
	}
	epoch, err = strconv.ParseUint(r.Header.Get("X-IRS-Epoch"), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("wire: missing epoch header on %s", path)
	}
	raw, err = io.ReadAll(io.LimitReader(r.Body, maxFilterBytes))
	if err != nil {
		return nil, 0, transportErr(err)
	}
	return raw, epoch, nil
}

// Filter downloads the latest revocation filter snapshot.
func (c *Client) Filter() (epoch uint64, f *bloom.Filter, err error) {
	raw, epoch, err := c.getRaw("filter", "/v1/filter")
	if err != nil {
		return 0, nil, err
	}
	f, err = bloom.Unmarshal(raw)
	return epoch, f, err
}

// FilterDelta downloads the delta from a held epoch to the latest.
func (c *Client) FilterDelta(from uint64) (delta []byte, latest uint64, err error) {
	return c.getRaw("filter_delta", "/v1/filter/delta?from="+strconv.FormatUint(from, 10))
}

// FilterSync runs one round of the versioned sync protocol: the held
// epoch and base-filter hash go up, an ApplyUpdate payload (or nothing,
// if current) comes back.
func (c *Client) FilterSync(from uint64, baseHash []byte) (payload []byte, latest uint64, err error) {
	path := "/v1/filter/sync?from=" + strconv.FormatUint(from, 10) +
		"&base=" + hex.EncodeToString(baseHash)
	if c.codec != CodecBinary {
		payload, latest, err = c.getRaw("filter_sync", path)
		if err == nil && len(payload) == 0 {
			payload = nil
		}
		return payload, latest, err
	}
	err = c.getBinary("filter_sync", path, maxFilterBytes,
		func(body []byte) error {
			kind, p, err := DecodeMsg(body, maxFilterBytes)
			if err != nil {
				return frameErr(err)
			}
			if kind != MsgFilterSyncResp {
				return frameErr(ErrFrameCorrupt)
			}
			lat, upd, err := DecodeFilterSyncResp(p)
			if err != nil {
				return frameErr(err)
			}
			latest = lat
			if len(upd) > 0 {
				// upd aliases the pooled decode buffer; the sync payload
				// outlives this call.
				payload = append([]byte(nil), upd...)
			}
			return nil
		},
		func(r *http.Response) error {
			// Compatibility shape: raw octet-stream body, epoch in the
			// X-IRS-Epoch header.
			epoch, perr := strconv.ParseUint(r.Header.Get("X-IRS-Epoch"), 10, 64)
			if perr != nil {
				drainClose(r.Body, maxBody)
				return fmt.Errorf("wire: missing epoch header on %s", path)
			}
			raw, rerr := io.ReadAll(io.LimitReader(r.Body, maxFilterBytes))
			r.Body.Close()
			if rerr != nil {
				return transportErr(rerr)
			}
			latest = epoch
			if len(raw) > 0 {
				payload = raw
			}
			return nil
		})
	if err != nil {
		return nil, 0, err
	}
	return payload, latest, nil
}

// PermanentRevoke invokes the admin endpoint; the client must have been
// constructed with the ledger's admin token.
func (c *Client) PermanentRevoke(id ids.PhotoID) error {
	return c.postJSON("admin_revoke", "/v1/admin/permanent-revoke",
		&AdminRevokeRequest{ID: id.String()}, nil,
		map[string]string{"Authorization": "Bearer " + c.admin})
}

// Directory maps ledger identifiers to Service instances, letting any
// validator route a PhotoID to its issuing ledger without external
// lookups (the ledger ID rides in the identifier's high bits). Safe for
// concurrent use: Register may race the read paths (the proxy registers
// recovering ledgers while RefreshFilters fans out over the rest).
type Directory struct {
	mu      sync.RWMutex
	clients map[ids.LedgerID]Service
}

// NewDirectory builds an empty directory.
func NewDirectory() *Directory {
	return &Directory{clients: make(map[ids.LedgerID]Service)}
}

// Register adds or replaces a ledger's service.
func (d *Directory) Register(id ids.LedgerID, c Service) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clients[id] = c
}

// For routes an identifier to its ledger's service.
func (d *Directory) For(id ids.PhotoID) (Service, error) {
	return d.ForLedger(id.Ledger)
}

// ForLedger routes a ledger identifier to its service; grouped batch
// queries resolve their per-ledger target through this.
func (d *Directory) ForLedger(lid ids.LedgerID) (Service, error) {
	d.mu.RLock()
	c, ok := d.clients[lid]
	d.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("wire: no ledger registered for id %d", lid)
	}
	return c, nil
}

// All returns a snapshot copy of every registered service, for filter
// aggregation sweeps.
func (d *Directory) All() map[ids.LedgerID]Service {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[ids.LedgerID]Service, len(d.clients))
	for k, v := range d.clients {
		out[k] = v
	}
	return out
}
