package wire

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"irs/internal/bloom"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/obs"
	"irs/internal/tsa"
)

// DefaultTimeout bounds one request/response exchange when the caller
// does not configure one. Serving-path callers that care about tail
// latency (the proxy, the retry layer) configure something far shorter;
// this is the safety net for interactive tools.
const DefaultTimeout = 30 * time.Second

// ClientOptions tunes a Client beyond the defaults.
type ClientOptions struct {
	// Timeout bounds each request/response exchange. 0 means
	// DefaultTimeout; negative disables the deadline entirely (the
	// caller's context is then the only bound).
	Timeout time.Duration
	// HTTPClient overrides the underlying transport, e.g. to share a
	// connection pool across clients. Its own Timeout field is left
	// alone; the Client applies its deadline per request via context.
	HTTPClient *http.Client
	// Obs, when non-nil, interns per-RPC latency histograms and
	// result-class counters (irs_wire_client_*) in the given registry.
	// nil disables client instrumentation at zero per-call cost.
	Obs *obs.Registry
}

// clientRPCs is the fixed RPC name set; instruments are interned once
// per client at construction, never per call.
var clientRPCs = []string{
	"claim", "op", "status", "status_batch", "seq",
	"keys", "filter", "filter_delta", "admin_revoke",
}

// rpcInstruments is one RPC's pre-interned series.
type rpcInstruments struct {
	lat                     *obs.Histogram
	ok, protocol, transport *obs.Counter
}

// clientObs maps RPC names to instruments; a nil *clientObs is the
// disabled state.
type clientObs struct {
	rpcs map[string]*rpcInstruments
}

func newClientObs(reg *obs.Registry) *clientObs {
	co := &clientObs{rpcs: make(map[string]*rpcInstruments, len(clientRPCs))}
	for _, rpc := range clientRPCs {
		l := obs.L("rpc", rpc)
		co.rpcs[rpc] = &rpcInstruments{
			lat:       reg.Histogram("irs_wire_client_seconds", nil, l),
			ok:        reg.Counter("irs_wire_client_requests_total", l, obs.L("class", "ok")),
			protocol:  reg.Counter("irs_wire_client_requests_total", l, obs.L("class", "protocol")),
			transport: reg.Counter("irs_wire_client_requests_total", l, obs.L("class", "transport")),
		}
	}
	return co
}

// observe records one finished RPC. Classes: "ok" for a successful
// exchange, "transport" when the request or response failed to move
// over the network, "protocol" for everything the server (or response
// validation) rejected.
func (co *clientObs) observe(rpc string, start time.Time, err error) {
	if co == nil {
		return
	}
	ri := co.rpcs[rpc]
	if ri == nil {
		return
	}
	ri.lat.Observe(time.Since(start).Seconds())
	var te *TransportError
	switch {
	case err == nil:
		ri.ok.Inc()
	case errors.As(err, &te):
		ri.transport.Inc()
	default:
		ri.protocol.Inc()
	}
}

// TransportError marks a failure moving a request or response over the
// network, as opposed to a protocol-level *Error answered by the
// server. PreSend reports that the failure happened before the request
// could have reached the server — dial/connection-refused class — which
// makes a retry safe even for non-idempotent verbs like Claim.
type TransportError struct {
	PreSend bool
	Err     error
}

// Error implements the error interface.
func (e *TransportError) Error() string { return fmt.Sprintf("wire: transport: %v", e.Err) }

// Unwrap exposes the underlying network error.
func (e *TransportError) Unwrap() error { return e.Err }

// preSendFailure reports whether err shows the request never left the
// client: a dial-phase failure means no connection existed to carry it.
func preSendFailure(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// transportErr wraps a client-side HTTP failure with its pre-send
// classification, preserving the original chain.
func transportErr(err error) error {
	return &TransportError{PreSend: preSendFailure(err), Err: err}
}

// Client speaks the ledger protocol. It is safe for concurrent use.
type Client struct {
	base    string
	http    *http.Client
	admin   string
	timeout time.Duration
	// ctx, when non-nil, is the base context every request derives from
	// (WithContext); nil means context.Background().
	ctx context.Context
	// obs holds the pre-interned per-RPC instruments; nil when the
	// client was built without ClientOptions.Obs.
	obs *clientObs
}

// NewClient creates a client for the ledger at base (e.g.
// "http://127.0.0.1:8330"). adminToken may be empty for non-appeals
// callers.
func NewClient(base string, adminToken string) *Client {
	return NewClientOpts(base, adminToken, ClientOptions{})
}

// NewClientOpts creates a client with explicit options.
func NewClientOpts(base string, adminToken string, opts ClientOptions) *Client {
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	var co *clientObs
	if opts.Obs != nil {
		co = newClientObs(opts.Obs)
	}
	return &Client{base: base, admin: adminToken, http: hc, timeout: timeout, obs: co}
}

// Base returns the base URL the client targets.
func (c *Client) Base() string { return c.base }

// WithContext returns a copy of the client whose requests derive from
// ctx — cancel the context and in-flight calls abort. The retry layer
// uses this to enforce per-attempt deadlines.
func (c *Client) WithContext(ctx context.Context) Service {
	cp := *c
	cp.ctx = ctx
	return &cp
}

// newRequest builds a request carrying the client's context and
// deadline. The returned cancel must be called once the response body
// is fully consumed.
func (c *Client) newRequest(method, path string, body io.Reader) (*http.Request, context.CancelFunc, error) {
	ctx := c.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	cancel := context.CancelFunc(func() {})
	if c.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
	}
	hr, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	return hr, cancel, nil
}

func (c *Client) postJSON(rpc, path string, req, resp any, headers map[string]string) (err error) {
	if c.obs != nil {
		start := time.Now()
		defer func() { c.obs.observe(rpc, start, err) }()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("wire: encoding request: %w", err)
	}
	hr, cancel, err := c.newRequest(http.MethodPost, path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer cancel()
	hr.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		hr.Header.Set(k, v)
	}
	r, err := c.http.Do(hr)
	if err != nil {
		return fmt.Errorf("wire: POST %s: %w", path, transportErr(err))
	}
	return decodeResponse(r, resp)
}

func (c *Client) getJSON(rpc, path string, resp any) (err error) {
	if c.obs != nil {
		start := time.Now()
		defer func() { c.obs.observe(rpc, start, err) }()
	}
	hr, cancel, err := c.newRequest(http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	defer cancel()
	r, err := c.http.Do(hr)
	if err != nil {
		return fmt.Errorf("wire: GET %s: %w", path, transportErr(err))
	}
	return decodeResponse(r, resp)
}

// Claim registers a photo and returns the receipt.
func (c *Client) Claim(req *ClaimRequest) (ledger.Receipt, error) {
	var resp ClaimResponse
	if err := c.postJSON("claim", "/v1/claim", req, &resp, nil); err != nil {
		return ledger.Receipt{}, err
	}
	id, err := ids.Parse(resp.ID)
	if err != nil {
		return ledger.Receipt{}, fmt.Errorf("wire: server returned bad id: %w", err)
	}
	tok, err := tsa.Unmarshal(resp.Timestamp)
	if err != nil {
		return ledger.Receipt{}, fmt.Errorf("wire: server returned bad timestamp: %w", err)
	}
	return ledger.Receipt{ID: id, Timestamp: tok}, nil
}

// Apply submits a signed revoke/unrevoke.
func (c *Client) Apply(id ids.PhotoID, op ledger.Op, seq uint64, sig []byte) error {
	return c.postJSON("op", "/v1/op", &OpRequest{ID: id.String(), Op: int(op), Seq: seq, Sig: sig}, nil, nil)
}

// Status validates a claim, returning the parsed signed proof.
func (c *Client) Status(id ids.PhotoID) (*ledger.StatusProof, error) {
	var resp StatusResponse
	if err := c.getJSON("status", "/v1/status?id="+url.QueryEscape(id.String()), &resp); err != nil {
		return nil, err
	}
	return ledger.UnmarshalProof(resp.Proof)
}

// StatusBatch validates up to MaxStatusBatch claims in one POST,
// returning parsed proofs in request order. The response is rejected
// unless it carries exactly one well-formed proof per requested
// identifier, each attesting the identifier it was asked about.
func (c *Client) StatusBatch(batch []ids.PhotoID) ([]*ledger.StatusProof, error) {
	if len(batch) == 0 {
		return nil, nil
	}
	if len(batch) > MaxStatusBatch {
		return nil, fmt.Errorf("wire: batch of %d exceeds limit %d", len(batch), MaxStatusBatch)
	}
	req := &StatusBatchRequest{IDs: make([]string, len(batch))}
	for i, id := range batch {
		req.IDs[i] = id.String()
	}
	var resp StatusBatchResponse
	if err := c.postJSON("status_batch", "/v1/status/batch", req, &resp, nil); err != nil {
		return nil, err
	}
	if len(resp.Proofs) != len(batch) {
		return nil, fmt.Errorf("wire: server returned %d proofs for %d ids", len(resp.Proofs), len(batch))
	}
	proofs := make([]*ledger.StatusProof, len(batch))
	for i, raw := range resp.Proofs {
		p, err := ledger.UnmarshalProof(raw)
		if err != nil {
			return nil, fmt.Errorf("wire: server returned bad proof %d: %w", i, err)
		}
		if p.ID != batch[i] {
			return nil, fmt.Errorf("wire: proof %d attests %s, want %s", i, p.ID, batch[i])
		}
		proofs[i] = p
	}
	return proofs, nil
}

// Seq fetches the current operation sequence for owner-side signing.
func (c *Client) Seq(id ids.PhotoID) (uint64, error) {
	var resp SeqQueryResponse
	if err := c.getJSON("seq", "/v1/seq?id="+url.QueryEscape(id.String()), &resp); err != nil {
		return 0, err
	}
	return resp.Seq, nil
}

// Keys fetches the ledger's verification keys.
func (c *Client) Keys() (*KeysResponse, error) {
	var resp KeysResponse
	if err := c.getJSON("keys", "/v1/keys", &resp); err != nil {
		return nil, err
	}
	if len(resp.SigningKey) != ed25519.PublicKeySize || len(resp.TimestampKey) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("wire: server returned malformed keys")
	}
	return &resp, nil
}

// maxFilterBytes bounds filter downloads; the bootstrap design tops out
// at proxy-held filters, so 1 GiB mirrors the paper's largest
// browser-resident filter.
const maxFilterBytes = 1 << 30

// getRaw issues a GET whose successful body is binary (filters); error
// bodies are still the JSON protocol error.
func (c *Client) getRaw(rpc, path string) (raw []byte, epoch uint64, err error) {
	if c.obs != nil {
		start := time.Now()
		defer func() { c.obs.observe(rpc, start, err) }()
	}
	hr, cancel, err := c.newRequest(http.MethodGet, path, nil)
	if err != nil {
		return nil, 0, err
	}
	defer cancel()
	r, err := c.http.Do(hr)
	if err != nil {
		return nil, 0, fmt.Errorf("wire: GET %s: %w", path, transportErr(err))
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		defer func() { _, _ = io.Copy(io.Discard, io.LimitReader(r.Body, maxBody)) }()
		var e Error
		if jerr := json.NewDecoder(io.LimitReader(r.Body, maxBody)).Decode(&e); jerr == nil && e.Code != 0 {
			return nil, 0, &e
		}
		return nil, 0, &Error{Code: r.StatusCode, Message: r.Status}
	}
	epoch, err = strconv.ParseUint(r.Header.Get("X-IRS-Epoch"), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("wire: missing epoch header on %s", path)
	}
	raw, err = io.ReadAll(io.LimitReader(r.Body, maxFilterBytes))
	if err != nil {
		return nil, 0, transportErr(err)
	}
	return raw, epoch, nil
}

// Filter downloads the latest revocation filter snapshot.
func (c *Client) Filter() (epoch uint64, f *bloom.Filter, err error) {
	raw, epoch, err := c.getRaw("filter", "/v1/filter")
	if err != nil {
		return 0, nil, err
	}
	f, err = bloom.Unmarshal(raw)
	return epoch, f, err
}

// FilterDelta downloads the delta from a held epoch to the latest.
func (c *Client) FilterDelta(from uint64) (delta []byte, latest uint64, err error) {
	return c.getRaw("filter_delta", "/v1/filter/delta?from="+strconv.FormatUint(from, 10))
}

// FilterSync runs one round of the versioned sync protocol: the held
// epoch and base-filter hash go up, an ApplyUpdate payload (or nothing,
// if current) comes back.
func (c *Client) FilterSync(from uint64, baseHash []byte) (payload []byte, latest uint64, err error) {
	path := "/v1/filter/sync?from=" + strconv.FormatUint(from, 10) +
		"&base=" + hex.EncodeToString(baseHash)
	payload, latest, err = c.getRaw("filter_sync", path)
	if err == nil && len(payload) == 0 {
		payload = nil
	}
	return payload, latest, err
}

// PermanentRevoke invokes the admin endpoint; the client must have been
// constructed with the ledger's admin token.
func (c *Client) PermanentRevoke(id ids.PhotoID) error {
	return c.postJSON("admin_revoke", "/v1/admin/permanent-revoke",
		&AdminRevokeRequest{ID: id.String()}, nil,
		map[string]string{"Authorization": "Bearer " + c.admin})
}

// Directory maps ledger identifiers to Service instances, letting any
// validator route a PhotoID to its issuing ledger without external
// lookups (the ledger ID rides in the identifier's high bits). Safe for
// concurrent use: Register may race the read paths (the proxy registers
// recovering ledgers while RefreshFilters fans out over the rest).
type Directory struct {
	mu      sync.RWMutex
	clients map[ids.LedgerID]Service
}

// NewDirectory builds an empty directory.
func NewDirectory() *Directory {
	return &Directory{clients: make(map[ids.LedgerID]Service)}
}

// Register adds or replaces a ledger's service.
func (d *Directory) Register(id ids.LedgerID, c Service) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clients[id] = c
}

// For routes an identifier to its ledger's service.
func (d *Directory) For(id ids.PhotoID) (Service, error) {
	return d.ForLedger(id.Ledger)
}

// ForLedger routes a ledger identifier to its service; grouped batch
// queries resolve their per-ledger target through this.
func (d *Directory) ForLedger(lid ids.LedgerID) (Service, error) {
	d.mu.RLock()
	c, ok := d.clients[lid]
	d.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("wire: no ledger registered for id %d", lid)
	}
	return c, nil
}

// All returns a snapshot copy of every registered service, for filter
// aggregation sweeps.
func (d *Directory) All() map[ids.LedgerID]Service {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[ids.LedgerID]Service, len(d.clients))
	for k, v := range d.clients {
		out[k] = v
	}
	return out
}
