package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
)

// TestStatusBatchOverHTTP is the happy path: proofs come back in
// request order, each verifiable against the ledger's signing key.
func TestStatusBatchOverHTTP(t *testing.T) {
	env := newEnv(t, ledger.Config{}, "")
	k := newKeypair(t)
	var batch []ids.PhotoID
	for i := 0; i < 5; i++ {
		batch = append(batch, k.claimVia(t, env.client, fmt.Sprintf("batch-%d", i), i%2 == 0).ID)
	}
	batch = append(batch, batch[0]) // duplicates are legal

	proofs, err := env.client.StatusBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(proofs) != len(batch) {
		t.Fatalf("got %d proofs for %d ids", len(proofs), len(batch))
	}
	for i, p := range proofs {
		if p.ID != batch[i] {
			t.Errorf("proof %d attests %v, want %v", i, p.ID, batch[i])
		}
		want := ledger.StateActive
		if i%2 == 0 && i < 5 {
			want = ledger.StateRevoked
		}
		if i == 5 {
			want = ledger.StateRevoked // duplicate of batch[0]
		}
		if p.State != want {
			t.Errorf("proof %d state %v, want %v", i, p.State, want)
		}
		if err := ledger.VerifyProof(env.ledger.SigningKey(), p, p.IssuedAt, time.Minute); err != nil {
			t.Errorf("proof %d does not verify: %v", i, err)
		}
	}
	// Empty input short-circuits without a round trip.
	if ps, err := env.client.StatusBatch(nil); err != nil || ps != nil {
		t.Errorf("empty batch: %v, %v", ps, err)
	}
}

// postRaw posts an arbitrary body to the batch endpoint and returns the
// status code.
func postRaw(t *testing.T, base string, body []byte) int {
	t.Helper()
	resp, err := http.Post(base+"/v1/status/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestStatusBatchServerRejectsHostileBodies: the endpoint must 400 on
// every malformed shape instead of panicking or part-answering.
func TestStatusBatchServerRejectsHostileBodies(t *testing.T) {
	env := newEnv(t, ledger.Config{}, "")
	k := newKeypair(t)
	good := k.claimVia(t, env.client, "hostile-anchor", false).ID

	oversized := StatusBatchRequest{IDs: make([]string, MaxStatusBatch+1)}
	for i := range oversized.IDs {
		oversized.IDs[i] = good.String()
	}
	oversizedBody, err := json.Marshal(&oversized)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		body []byte
	}{
		{"not json", []byte("))) not json (((")},
		{"wrong field", []byte(`{"identifiers":["x"]}`)},
		{"empty list", []byte(`{"ids":[]}`)},
		{"null list", []byte(`{"ids":null}`)},
		{"unparseable id", []byte(`{"ids":["not-an-id"]}`)},
		{"mixed good and bad ids", []byte(`{"ids":["` + good.String() + `","zzz"]}`)},
		{"oversized batch", oversizedBody},
		{"megabyte of ids", []byte(`{"ids":["` + strings.Repeat("A", 2<<20) + `"]}`)},
	}
	for _, tc := range cases {
		if code := postRaw(t, env.server.URL, tc.body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}
}

// TestStatusBatchClientRefusesOversized: the client bound matches the
// server's, so oversized batches fail before any bytes move.
func TestStatusBatchClientRefusesOversized(t *testing.T) {
	env := newEnv(t, ledger.Config{}, "")
	batch := make([]ids.PhotoID, MaxStatusBatch+1)
	for i := range batch {
		batch[i] = hostileID(t)
	}
	if _, err := env.client.StatusBatch(batch); err == nil {
		t.Error("oversized batch sent")
	}
}

// TestStatusBatchClientAgainstHostileServers: short proof lists, wrong
// identifiers, and garbage proof bytes must all be errors, never
// fabricated validations.
func TestStatusBatchClientAgainstHostileServers(t *testing.T) {
	id := hostileID(t)
	other := hostileID(t)
	legit, err := ledger.New(ledger.Config{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer legit.Close()
	wrongProof, err := legit.Status(other)
	if err != nil {
		t.Fatal(err)
	}

	responses := []struct {
		name string
		body string
	}{
		{"garbage json", `{"proofs": [42`},
		{"empty proof list", `{"proofs":[]}`},
		{"too many proofs", `{"proofs":["aGk=","aGk="]}`},
		{"garbage proof bytes", `{"proofs":["aGk="]}`},
		{"proof for the wrong id", mustBatchBody(t, wrongProof.Marshal())},
	}
	for _, tc := range responses {
		srv := hostileServer(t, http.StatusOK, "application/json", tc.body, nil)
		c := NewClient(srv.URL, "")
		if _, err := c.StatusBatch([]ids.PhotoID{id}); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func mustBatchBody(t *testing.T, proofs ...[]byte) string {
	t.Helper()
	data, err := json.Marshal(&StatusBatchResponse{Proofs: proofs})
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestLoopbackStatusBatchBound: the in-process adapter enforces the
// same limit as the HTTP surface.
func TestLoopbackStatusBatchBound(t *testing.T) {
	l, err := ledger.New(ledger.Config{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lb := &Loopback{L: l}
	if _, err := lb.StatusBatch(make([]ids.PhotoID, MaxStatusBatch+1)); err == nil {
		t.Error("oversized loopback batch accepted")
	}
}
