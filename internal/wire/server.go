package wire

import (
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/obs"
)

// Server adapts a ledger.Ledger to the HTTP protocol. Construct with
// NewServer and mount it anywhere an http.Handler goes. The server
// speaks both codecs: JSON everywhere, and IRSW1 on the hot routes
// (status, status batch, filter sync) when the request asks for it,
// advertising the capability on every response via X-IRS-Wire.
type Server struct {
	ledger *ledger.Ledger
	// adminToken guards the permanent-revoke endpoint. Empty disables
	// the endpoint entirely.
	adminToken string
	mux        *http.ServeMux
	obsReg     *obs.Registry
	// codecCtr/txBytes split hot-route responses by encoding:
	// index 0 JSON, 1 IRSW1. Bytes are counted where the handler knows
	// them (always, for binary frames).
	codecCtr [2]*obs.Counter
	txBytes  [2]*obs.Counter
}

// ServerOptions tunes the optional server surfaces.
type ServerOptions struct {
	// Obs is the registry the per-route instruments are interned in;
	// nil means the ledger's own registry, so the RPC series land next
	// to the irs_ledger_* counters.
	Obs *obs.Registry
	// Debug mounts GET /debug/metrics (Prometheus text) and the
	// net/http/pprof endpoints. Off by default: these expose
	// operational detail and on-demand profiling, so binaries gate
	// them behind an explicit flag.
	Debug bool
	// Tracer, with Debug, also mounts GET /debug/traces.
	Tracer *obs.Tracer
}

// NewServer wraps l. adminToken authorizes the appeals process's
// permanent revocations; pass "" to disable the admin surface.
func NewServer(l *ledger.Ledger, adminToken string) *Server {
	return NewServerOpts(l, adminToken, ServerOptions{})
}

// NewServerOpts is NewServer with explicit observability options.
func NewServerOpts(l *ledger.Ledger, adminToken string, opts ServerOptions) *Server {
	reg := opts.Obs
	if reg == nil {
		reg = l.Registry()
	}
	s := &Server{ledger: l, adminToken: adminToken, mux: http.NewServeMux(), obsReg: reg}
	for i, name := range [2]string{"json", "binary"} {
		l := obs.L("codec", name)
		s.codecCtr[i] = reg.Counter("irs_wire_server_codec_total", l)
		s.txBytes[i] = reg.Counter("irs_wire_server_tx_bytes_total", l)
	}
	route := func(pattern, name string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.instrument(name, h))
	}
	route("POST /v1/claim", "claim", s.handleClaim)
	route("POST /v1/op", "op", s.handleOp)
	route("GET /v1/status", "status", s.handleStatus)
	route("POST /v1/status/batch", "status_batch", s.handleStatusBatch)
	route("GET /v1/seq", "seq", s.handleSeq)
	route("GET /v1/keys", "keys", s.handleKeys)
	route("GET /v1/filter", "filter", s.handleFilter)
	route("GET /v1/filter/delta", "filter_delta", s.handleFilterDelta)
	route("GET /v1/filter/sync", "filter_sync", s.handleFilterSync)
	route("POST /v1/admin/permanent-revoke", "admin_revoke", s.handleAdminRevoke)
	if opts.Debug {
		obs.RegisterDebug(s.mux, reg, opts.Tracer)
	}
	return s
}

// Registry returns the registry the server's route series live in.
func (s *Server) Registry() *obs.Registry { return s.obsReg }

// statusWriter captures the response status for the route counters.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a route handler with a latency histogram and a
// status-class counter. Instruments are interned per route at mount
// time; per request the cost is two clock reads and the atomics.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	lat := s.obsReg.Histogram("irs_wire_server_seconds", nil, obs.L("route", name))
	classes := [3]*obs.Counter{
		s.obsReg.Counter("irs_wire_server_requests_total", obs.L("route", name), obs.L("class", "2xx")),
		s.obsReg.Counter("irs_wire_server_requests_total", obs.L("route", name), obs.L("class", "4xx")),
		s.obsReg.Counter("irs_wire_server_requests_total", obs.L("route", name), obs.L("class", "5xx")),
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		// Advertised on every response — including errors — so a
		// binary-preferring client learns after first contact that it
		// may send IRSW1 request bodies.
		w.Header().Set(WireHeader, WireV1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		lat.Observe(time.Since(start).Seconds())
		switch {
		case sw.status < 400:
			classes[0].Inc()
		case sw.status < 500:
			classes[1].Inc()
		default:
			classes[2].Inc()
		}
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// observeCodec records one hot-route response's encoding; n < 0 means
// the byte count is unknown.
func (s *Server) observeCodec(binary bool, n int) {
	i := 0
	if binary {
		i = 1
	}
	s.codecCtr[i].Inc()
	if n >= 0 {
		s.txBytes[i].Add(uint64(n))
	}
}

// writeBinary writes one IRSW1 response frame built by encode into a
// pooled buffer — the steady-state zero-allocation server encode path.
func (s *Server) writeBinary(w http.ResponseWriter, encode func(dst []byte) []byte) {
	bp := GetBuf()
	defer PutBuf(bp)
	*bp = encode(*bp)
	w.Header().Set("Content-Type", ContentTypeBinary)
	w.WriteHeader(http.StatusOK)
	n, _ := w.Write(*bp)
	s.observeCodec(true, n)
}

// ReadBinaryBatch parses an IRSW1 id-batch request body of the given
// message kind (MsgStatusBatchReq here, MsgValidateBatchReq at the
// proxy). A frame that does not parse is a client error (400),
// mirroring the JSON validation failures.
func ReadBinaryBatch(body io.Reader, wantKind byte) ([]ids.PhotoID, error) {
	bp, err := readBodyPooled(body, maxBody)
	if err != nil {
		return nil, ErrFrameTruncated
	}
	defer PutBuf(bp)
	kind, payload, err := DecodeMsg(*bp, MaxFramePayload)
	if err != nil {
		return nil, err
	}
	if kind != wantKind {
		return nil, ErrFrameCorrupt
	}
	var batch []ids.PhotoID
	if _, err := decodeIDBatch(payload, func(i int, id ids.PhotoID) error {
		if batch == nil {
			batch = make([]ids.PhotoID, 0, MaxStatusBatch)
		}
		batch = append(batch, id)
		return nil
	}); err != nil {
		return nil, err
	}
	return batch, nil
}

func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req ClaimRequest
	if err := ReadJSON(r.Body, &req); err != nil {
		WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.ContentHash) != 32 {
		WriteError(w, http.StatusBadRequest, "content hash must be 32 bytes")
		return
	}
	var hash [32]byte
	copy(hash[:], req.ContentHash)
	var receipt ledger.Receipt
	var err error
	if req.Custodial {
		receipt, err = s.ledger.CustodialClaim(hash, req.PubKey, req.HashSig)
	} else {
		receipt, err = s.ledger.Claim(hash, req.PubKey, req.HashSig, req.RevokedAtBirth)
	}
	if err != nil {
		WriteError(w, statusFor(err), err.Error())
		return
	}
	WriteJSON(w, http.StatusOK, &ClaimResponse{
		ID:        receipt.ID.String(),
		Timestamp: receipt.Timestamp.Marshal(),
	})
}

func (s *Server) handleOp(w http.ResponseWriter, r *http.Request) {
	var req OpRequest
	if err := ReadJSON(r.Body, &req); err != nil {
		WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	id, err := ids.Parse(req.ID)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	op := ledger.Op(req.Op)
	if op != ledger.OpRevoke && op != ledger.OpUnrevoke {
		WriteError(w, http.StatusBadRequest, "op must be 1 (revoke) or 2 (unrevoke)")
		return
	}
	if err := s.ledger.Apply(id, op, req.Sig); err != nil {
		WriteError(w, statusFor(err), err.Error())
		return
	}
	WriteJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id, err := ids.Parse(r.URL.Query().Get("id"))
	if err != nil {
		WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	proof, err := s.ledger.Status(id)
	if err != nil {
		WriteError(w, statusFor(err), err.Error())
		return
	}
	if AcceptsBinary(r) {
		s.writeBinary(w, func(dst []byte) []byte { return EncodeStatusResp(dst, proof) })
		return
	}
	s.observeCodec(false, -1)
	WriteJSON(w, http.StatusOK, &StatusResponse{
		State: proof.State.String(),
		Proof: proof.Marshal(),
	})
}

func (s *Server) handleStatusBatch(w http.ResponseWriter, r *http.Request) {
	var batch []ids.PhotoID
	if IsBinaryContent(r.Header.Get("Content-Type")) {
		var err error
		batch, err = ReadBinaryBatch(r.Body, MsgStatusBatchReq)
		if err != nil {
			WriteError(w, http.StatusBadRequest, err.Error())
			return
		}
	} else {
		var req StatusBatchRequest
		if err := ReadJSON(r.Body, &req); err != nil {
			WriteError(w, http.StatusBadRequest, err.Error())
			return
		}
		if len(req.IDs) == 0 {
			WriteError(w, http.StatusBadRequest, "batch must name at least one id")
			return
		}
		if len(req.IDs) > MaxStatusBatch {
			WriteError(w, http.StatusBadRequest,
				fmt.Sprintf("batch of %d exceeds limit %d", len(req.IDs), MaxStatusBatch))
			return
		}
		batch = make([]ids.PhotoID, len(req.IDs))
		for i, raw := range req.IDs {
			id, err := ids.Parse(raw)
			if err != nil {
				WriteError(w, http.StatusBadRequest, fmt.Sprintf("id %d: %v", i, err))
				return
			}
			batch[i] = id
		}
	}
	proofs, err := s.ledger.StatusBatch(batch)
	if err != nil {
		WriteError(w, statusFor(err), err.Error())
		return
	}
	if AcceptsBinary(r) {
		s.writeBinary(w, func(dst []byte) []byte { return EncodeStatusBatchResp(dst, proofs) })
		return
	}
	s.observeCodec(false, -1)
	resp := &StatusBatchResponse{Proofs: make([][]byte, len(proofs))}
	for i, p := range proofs {
		resp.Proofs[i] = p.Marshal()
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSeq(w http.ResponseWriter, r *http.Request) {
	id, err := ids.Parse(r.URL.Query().Get("id"))
	if err != nil {
		WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	rec, err := s.ledger.Record(id)
	if err != nil {
		WriteError(w, statusFor(err), err.Error())
		return
	}
	WriteJSON(w, http.StatusOK, &SeqQueryResponse{Seq: rec.OpSeq, State: rec.State.String()})
}

func (s *Server) handleKeys(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, &KeysResponse{
		LedgerID:     uint32(s.ledger.ID()),
		SigningKey:   s.ledger.SigningKey(),
		TimestampKey: s.ledger.TimestampKey(),
	})
}

func (s *Server) handleFilter(w http.ResponseWriter, r *http.Request) {
	seq, f, err := s.ledger.FilterSnapshot()
	if err != nil {
		WriteError(w, statusFor(err), err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-IRS-Epoch", strconv.FormatUint(seq, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(f.Marshal())
}

func (s *Server) handleFilterDelta(w http.ResponseWriter, r *http.Request) {
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		WriteError(w, http.StatusBadRequest, "from must be an epoch number")
		return
	}
	delta, latest, err := s.ledger.FilterDelta(from)
	if err != nil {
		WriteError(w, statusFor(err), err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-IRS-Epoch", strconv.FormatUint(latest, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(delta)
}

func (s *Server) handleFilterSync(w http.ResponseWriter, r *http.Request) {
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		WriteError(w, http.StatusBadRequest, "from must be an epoch number")
		return
	}
	// base is the hex SHA-256 of the caller's held filter; absent or
	// malformed just means "no valid base" and resolves to a snapshot.
	baseHash, err := hex.DecodeString(r.URL.Query().Get("base"))
	if err != nil {
		baseHash = nil
	}
	payload, latest, err := s.ledger.FilterSync(from, baseHash)
	if err != nil {
		WriteError(w, statusFor(err), err.Error())
		return
	}
	if AcceptsBinary(r) {
		// IRSW1 carries the epoch in-band and CRC-protects the update
		// payload end to end; no epoch header round trip.
		s.writeBinary(w, func(dst []byte) []byte {
			return EncodeFilterSyncResp(dst, latest, payload)
		})
		return
	}
	s.observeCodec(false, len(payload))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-IRS-Epoch", strconv.FormatUint(latest, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(payload)
}

func (s *Server) handleAdminRevoke(w http.ResponseWriter, r *http.Request) {
	if s.adminToken == "" {
		WriteError(w, http.StatusForbidden, "admin surface disabled")
		return
	}
	auth := r.Header.Get("Authorization")
	want := "Bearer " + s.adminToken
	if subtle.ConstantTimeCompare([]byte(auth), []byte(want)) != 1 {
		WriteError(w, http.StatusUnauthorized, "bad admin token")
		return
	}
	var req AdminRevokeRequest
	if err := ReadJSON(r.Body, &req); err != nil {
		WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	id, err := ids.Parse(req.ID)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.ledger.PermanentRevoke(id); err != nil {
		WriteError(w, statusFor(err), err.Error())
		return
	}
	WriteJSON(w, http.StatusOK, struct{}{})
}

// statusFor maps ledger errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ledger.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ledger.ErrBadSignature), errors.Is(err, ledger.ErrBadOpSeq):
		return http.StatusForbidden
	case errors.Is(err, ledger.ErrNonRevocable), errors.Is(err, ledger.ErrPermanent):
		return http.StatusConflict
	case errors.Is(err, ledger.ErrNoSnapshot), errors.Is(err, ledger.ErrSnapshotGone),
		errors.Is(err, ledger.ErrSnapshotAhead):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}
