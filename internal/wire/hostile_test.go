package wire

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"irs/internal/ids"
	"irs/internal/ledger"
)

// hostileServer returns the given body for everything.
func hostileServer(t *testing.T, status int, contentType, body string, headers map[string]string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", contentType)
		for k, v := range headers {
			w.Header().Set(k, v)
		}
		w.WriteHeader(status)
		w.Write([]byte(body))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func hostileID(t *testing.T) ids.PhotoID {
	t.Helper()
	id, err := ids.New(1)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// The client must turn every malformed-server behaviour into an error,
// never a panic and never a fabricated success.
func TestClientAgainstGarbageJSON(t *testing.T) {
	srv := hostileServer(t, http.StatusOK, "application/json", `{"id": 42, "ts": "not-b64"`, nil)
	c := NewClient(srv.URL, "")
	if _, err := c.Claim(&ClaimRequest{ContentHash: make([]byte, 32)}); err == nil {
		t.Error("garbage claim response accepted")
	}
	if _, err := c.Status(hostileID(t)); err == nil {
		t.Error("garbage status response accepted")
	}
	if _, err := c.Keys(); err == nil {
		t.Error("garbage keys response accepted")
	}
	if _, _, err := c.Filter(); err == nil {
		t.Error("garbage filter response accepted")
	}
}

func TestClientAgainstWrongShapes(t *testing.T) {
	// Valid JSON, wrong semantics.
	srv := hostileServer(t, http.StatusOK, "application/json",
		`{"id":"notanid","ts":"aGVsbG8="}`, nil)
	c := NewClient(srv.URL, "")
	if _, err := c.Claim(&ClaimRequest{ContentHash: make([]byte, 32)}); err == nil {
		t.Error("bad id in claim response accepted")
	}

	// Keys with short key material.
	srv2 := hostileServer(t, http.StatusOK, "application/json",
		`{"ledger_id":1,"signing_key":"aGk=","timestamp_key":"aGk="}`, nil)
	if _, err := NewClient(srv2.URL, "").Keys(); err == nil {
		t.Error("short keys accepted")
	}
}

func TestClientAgainstMissingEpochHeader(t *testing.T) {
	srv := hostileServer(t, http.StatusOK, "application/octet-stream", "IRSBF1xxxx", nil)
	c := NewClient(srv.URL, "")
	if _, _, err := c.Filter(); err == nil {
		t.Error("filter without epoch header accepted")
	}
	if _, _, err := c.FilterDelta(1); err == nil {
		t.Error("delta without epoch header accepted")
	}
}

func TestClientAgainstHTMLErrorPage(t *testing.T) {
	// A misconfigured reverse proxy answering 502 with HTML.
	srv := hostileServer(t, http.StatusBadGateway, "text/html", "<html>bad gateway</html>", nil)
	c := NewClient(srv.URL, "")
	err := c.Apply(hostileID(t), ledger.OpRevoke, 1, []byte("sig"))
	if err == nil {
		t.Fatal("502 HTML accepted")
	}
	if ErrStatus(err) != http.StatusBadGateway {
		t.Errorf("status %d, want 502", ErrStatus(err))
	}
}

func TestClientAgainstConnectionRefused(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()
	c := NewClient(url, "")
	if _, err := c.Status(hostileID(t)); err == nil {
		t.Error("dead server produced a status")
	}
	if _, err := c.Seq(hostileID(t)); err == nil {
		t.Error("dead server produced a seq")
	}
}

func TestClientAgainstOversizedBody(t *testing.T) {
	// A body beyond the client's read limit must not OOM; the truncated
	// JSON then fails to parse.
	big := make([]byte, 2<<20)
	for i := range big {
		big[i] = 'a'
	}
	srv := hostileServer(t, http.StatusOK, "application/json", `{"state":"`+string(big)+`"}`, nil)
	c := NewClient(srv.URL, "")
	if _, err := c.Status(hostileID(t)); err == nil {
		t.Error("oversized body accepted")
	}
}
