package wire

import (
	"fmt"

	"irs/internal/bloom"
	"irs/internal/ids"
	"irs/internal/ledger"
)

// Service is the ledger surface consumed by owners (camera software),
// aggregators, proxies, and the appeals process. Two implementations
// exist: Client (HTTP, the deployed form) and Loopback (direct in-process
// calls, used by experiments so that million-operation sweeps don't pay
// loopback-TCP costs they aren't measuring).
type Service interface {
	Claim(req *ClaimRequest) (ledger.Receipt, error)
	Apply(id ids.PhotoID, op ledger.Op, seq uint64, sig []byte) error
	Seq(id ids.PhotoID) (uint64, error)
	Status(id ids.PhotoID) (*ledger.StatusProof, error)
	// StatusBatch validates up to MaxStatusBatch identifiers in one
	// round trip, returning proofs in request order.
	StatusBatch(batch []ids.PhotoID) ([]*ledger.StatusProof, error)
	Keys() (*KeysResponse, error)
	Filter() (epoch uint64, f *bloom.Filter, err error)
	FilterDelta(from uint64) (delta []byte, latest uint64, err error)
	// FilterSync is the versioned filter sync: the caller presents the
	// epoch and hash of the filter it holds and receives whatever
	// payload (base-validated delta or full snapshot, whichever is
	// smaller — feed it to bloom.ApplyUpdate) brings it to the latest
	// epoch. An empty payload means the caller is already current. A
	// base mismatch is resolved by the server (snapshot), not surfaced
	// as an error.
	FilterSync(from uint64, baseHash []byte) (payload []byte, latest uint64, err error)
	PermanentRevoke(id ids.PhotoID) error
}

var (
	_ Service = (*Client)(nil)
	_ Service = (*Loopback)(nil)
)

// Loopback adapts a *ledger.Ledger to the Service interface without a
// network.
type Loopback struct {
	L *ledger.Ledger
}

// Claim implements Service.
func (lb *Loopback) Claim(req *ClaimRequest) (ledger.Receipt, error) {
	if len(req.ContentHash) != 32 {
		return ledger.Receipt{}, fmt.Errorf("wire: content hash must be 32 bytes")
	}
	var hash [32]byte
	copy(hash[:], req.ContentHash)
	if req.Custodial {
		return lb.L.CustodialClaim(hash, req.PubKey, req.HashSig)
	}
	return lb.L.Claim(hash, req.PubKey, req.HashSig, req.RevokedAtBirth)
}

// Apply implements Service.
func (lb *Loopback) Apply(id ids.PhotoID, op ledger.Op, seq uint64, sig []byte) error {
	return lb.L.Apply(id, op, sig)
}

// Seq implements Service.
func (lb *Loopback) Seq(id ids.PhotoID) (uint64, error) {
	rec, err := lb.L.Record(id)
	if err != nil {
		return 0, err
	}
	return rec.OpSeq, nil
}

// Status implements Service.
func (lb *Loopback) Status(id ids.PhotoID) (*ledger.StatusProof, error) {
	return lb.L.Status(id)
}

// StatusBatch implements Service. The bound is enforced even in
// process so loopback and HTTP deployments share limits.
func (lb *Loopback) StatusBatch(batch []ids.PhotoID) ([]*ledger.StatusProof, error) {
	if len(batch) > MaxStatusBatch {
		return nil, fmt.Errorf("wire: batch of %d exceeds limit %d", len(batch), MaxStatusBatch)
	}
	return lb.L.StatusBatch(batch)
}

// Keys implements Service.
func (lb *Loopback) Keys() (*KeysResponse, error) {
	return &KeysResponse{
		LedgerID:     uint32(lb.L.ID()),
		SigningKey:   lb.L.SigningKey(),
		TimestampKey: lb.L.TimestampKey(),
	}, nil
}

// Filter implements Service.
func (lb *Loopback) Filter() (uint64, *bloom.Filter, error) {
	return lb.L.FilterSnapshot()
}

// FilterDelta implements Service.
func (lb *Loopback) FilterDelta(from uint64) ([]byte, uint64, error) {
	return lb.L.FilterDelta(from)
}

// FilterSync implements Service.
func (lb *Loopback) FilterSync(from uint64, baseHash []byte) ([]byte, uint64, error) {
	return lb.L.FilterSync(from, baseHash)
}

// PermanentRevoke implements Service. The loopback caller is in-process
// and therefore trusted the way the admin token would establish over
// HTTP.
func (lb *Loopback) PermanentRevoke(id ids.PhotoID) error {
	return lb.L.PermanentRevoke(id)
}
