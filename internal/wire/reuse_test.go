package wire

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"irs/internal/ids"
)

// TestDecodeResponseDrainsForReuse pins the keep-alive contract of
// decodeResponse: a response whose body carries data past the JSON
// value (here: padding after the document) must still leave the
// connection reusable. Before the drain fix, closing the body with
// unread bytes made the transport discard the connection, so the second
// request below dialed a fresh one.
func TestDecodeResponseDrainsForReuse(t *testing.T) {
	const padding = 8 << 10 // larger than any decoder read-ahead
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		body := `{"seq":7,"state":"active"}` + strings.Repeat(" ", padding)
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		_, _ = w.Write([]byte(body))
	}))
	defer srv.Close()

	// Dedicated transport so the pool isn't shared with other tests.
	c := NewClientOpts(srv.URL, "", ClientOptions{HTTPClient: &http.Client{Transport: &http.Transport{}}})

	var resp SeqQueryResponse
	if err := c.getJSON("seq", "/v1/seq?id=x", &resp); err != nil {
		t.Fatalf("first request: %v", err)
	}

	var got httptrace.GotConnInfo
	ctx := httptrace.WithClientTrace(context.Background(), &httptrace.ClientTrace{
		GotConn: func(i httptrace.GotConnInfo) { got = i },
	})
	c2 := c.WithContext(ctx).(*Client)
	if err := c2.getJSON("seq", "/v1/seq?id=x", &resp); err != nil {
		t.Fatalf("second request: %v", err)
	}
	if !got.Reused {
		t.Error("second request dialed a new connection; body with trailing data was not drained")
	}
}

// TestDirectoryRegisterRaces exercises Register racing every read path;
// run under -race this fails on the pre-mutex bare-map Directory (the
// scenario is real: the proxy re-registers a recovering ledger while
// RefreshFilters fans out over the directory).
func TestDirectoryRegisterRaces(t *testing.T) {
	d := NewDirectory()
	svc := &Loopback{}
	id, err := ids.New(3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	wg.Add(4)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 2000; i++ {
			d.Register(ids.LedgerID(i%8), svc)
		}
	}()
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 2000; i++ {
			_, _ = d.ForLedger(ids.LedgerID(i % 8))
		}
	}()
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 2000; i++ {
			_, _ = d.For(id)
		}
	}()
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 2000; i++ {
			_ = d.All()
		}
	}()
	close(start)
	wg.Wait()
	if len(d.All()) != 8 {
		t.Errorf("directory holds %d ledgers, want 8", len(d.All()))
	}
}

// TestKeepAliveReuseAtHighConcurrency pins the transport-pool
// satellite: 8 workers hammering one host must keep their connections
// warm between rounds. http.DefaultTransport's MaxIdleConnsPerHost of
// 2 discards most of the pool at every round boundary, paying a fresh
// dial per worker per round; NewTransport sizes the idle pool to the
// batch fan-out so after warm-up no new connections are dialed.
func TestKeepAliveReuseAtHighConcurrency(t *testing.T) {
	const workers = 8
	const rounds = 10

	var conns atomic.Int64
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"seq":1,"state":"active"}`))
	}))
	srv.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			conns.Add(1)
		}
	}
	srv.Start()
	defer srv.Close()

	c := NewClient(srv.URL, "") // default transport: NewTransport()
	runRound := func() {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				var resp SeqQueryResponse
				if err := c.getJSON("seq", "/v1/seq?id=x", &resp); err != nil {
					t.Errorf("request: %v", err)
				}
			}()
		}
		wg.Wait()
	}

	// Warm-up may dial up to one connection per concurrent worker.
	runRound()
	warm := conns.Load()
	if warm > workers {
		t.Fatalf("warm-up dialed %d connections for %d workers", warm, workers)
	}
	for i := 0; i < rounds; i++ {
		runRound()
	}
	if got := conns.Load(); got > warm {
		t.Errorf("rounds after warm-up dialed %d extra connections; idle pool is not sized to the fan-out",
			got-warm)
	}
}
