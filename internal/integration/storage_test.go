package integration

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"net/http/httptest"
	"sync"
	"testing"

	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/wire"
)

// TestPersistentLedgerSurvivesRestart hammers a segment-engine ledger
// over real HTTP — concurrent claims and revokes sized to force
// background flushes and compactions mid-traffic — then restarts it at
// a different shard count and requires byte-identical state (StateHash)
// plus correct per-claim status over the wire.
func TestPersistentLedgerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	open := func(shards int) *ledger.Ledger {
		l, err := ledger.New(ledger.Config{
			ID:              7,
			Dir:             dir,
			Shards:          shards,
			Engine:          ledger.EngineSegments,
			WALSync:         ledger.WALSyncBatch,
			MemtableRecords: 128, // several background flushes over the run
			CompactAfter:    3,   // and at least one background compaction
		})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	l := open(8)
	srv := httptest.NewServer(wire.NewServer(l, ""))

	const writers = 8
	const perWriter = 80
	type claimed struct {
		id      ids.PhotoID
		revoked bool
	}
	all := make([][]claimed, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := wire.NewClient(srv.URL, "")
			pub, priv, err := ed25519.GenerateKey(rand.Reader)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perWriter; i++ {
				var hash [32]byte
				binary.LittleEndian.PutUint64(hash[:], uint64(w))
				binary.LittleEndian.PutUint64(hash[8:], uint64(i))
				hash = sha256.Sum256(hash[:])
				receipt, err := client.Claim(&wire.ClaimRequest{
					ContentHash: hash[:],
					PubKey:      pub,
					HashSig:     ed25519.Sign(priv, ledger.ClaimMsg(hash)),
				})
				if err != nil {
					t.Errorf("writer %d claim %d: %v", w, i, err)
					return
				}
				c := claimed{id: receipt.ID}
				if i%3 == 0 {
					seq, err := client.Seq(receipt.ID)
					if err != nil {
						t.Errorf("writer %d seq: %v", w, err)
						return
					}
					sig := ed25519.Sign(priv, ledger.OpMsg(receipt.ID, ledger.OpRevoke, seq+1))
					if err := client.Apply(receipt.ID, ledger.OpRevoke, seq+1, sig); err != nil {
						t.Errorf("writer %d revoke: %v", w, err)
						return
					}
					c.revoked = true
				}
				all[w] = append(all[w], c)
			}
		}(w)
	}
	wg.Wait()
	srv.Close()
	if t.Failed() {
		t.Fatal("writer errors above")
	}

	st := l.StorageStats()
	if st.Flushes == 0 {
		t.Error("hammer never triggered a background flush; shrink MemtableRecords")
	}
	if st.Compactions == 0 {
		t.Error("hammer never triggered a background compaction; shrink CompactAfter")
	}
	want, err := l.StateHash()
	if err != nil {
		t.Fatal(err)
	}
	wantClaims, wantRevoked := l.Count()
	if wantClaims != writers*perWriter {
		t.Fatalf("claims = %d, want %d", wantClaims, writers*perWriter)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart at a different shard count; state must be unchanged and
	// every claim's status must still be served, over HTTP, from the
	// mix of recovered segments and replayed WAL.
	rl := open(32)
	defer rl.Close()
	got, err := rl.StateHash()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("state hash changed across restart:\n got %x\nwant %x", got, want)
	}
	if claims, revoked := rl.Count(); claims != wantClaims || revoked != wantRevoked {
		t.Fatalf("counts after restart = (%d, %d), want (%d, %d)", claims, revoked, wantClaims, wantRevoked)
	}
	srv2 := httptest.NewServer(wire.NewServer(rl, ""))
	defer srv2.Close()
	client := wire.NewClient(srv2.URL, "")
	for w := range all {
		for i, c := range all[w] {
			proof, err := client.Status(c.id)
			if err != nil {
				t.Fatalf("status writer %d item %d: %v", w, i, err)
			}
			wantState := ledger.StateActive
			if c.revoked {
				wantState = ledger.StateRevoked
			}
			if proof.State != wantState {
				t.Fatalf("writer %d item %d: state %v, want %v", w, i, proof.State, wantState)
			}
		}
	}
}
