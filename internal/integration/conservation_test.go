package integration

import (
	"crypto/ed25519"
	crand "crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/obs"
	"irs/internal/proxy"
	"irs/internal/wire"
)

// The conservation suite drives a browser-shaped workload through the
// full validation stack — proxy Validator, loopback HTTP wire, ledger —
// and checks the obs layer's core accounting invariant after every
// batch: each validation occurrence lands in exactly one of the six
// outcome counters, so
//
//	Total == FilterMisses + CacheHits + LedgerQueries +
//	         StaleServed + Unavailable + BreakerFastFails
//
// at every quiescent point, across ledger shard counts and client
// concurrency. The phases manufacture every outcome class: fresh
// queries, cache hits, filter fast-paths, stale serving inside an
// outage window, and hard failures around the breaker trip point.

// outageService injects a ledger outage in front of a wire client:
// while down, every call fails with the pre-send transport error class
// a dead ledger produces.
type outageService struct {
	wire.Service
	down atomic.Bool
}

func (s *outageService) Status(id ids.PhotoID) (*ledger.StatusProof, error) {
	if s.down.Load() {
		return nil, &wire.TransportError{PreSend: true, Err: fmt.Errorf("outage")}
	}
	return s.Service.Status(id)
}

func (s *outageService) StatusBatch(batch []ids.PhotoID) ([]*ledger.StatusProof, error) {
	if s.down.Load() {
		return nil, &wire.TransportError{PreSend: true, Err: fmt.Errorf("outage")}
	}
	return s.Service.StatusBatch(batch)
}

// claimPopulation claims n photos on l; ids at odd indexes are revoked
// at birth (so they are in the revocation filter).
func claimPopulation(t *testing.T, l *ledger.Ledger, n int) (revoked, clean []ids.PhotoID) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(crand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(i))
		h := sha256.Sum256(buf[:])
		rec, err := l.Claim(h, pub, ed25519.Sign(priv, ledger.ClaimMsg(h)), i%2 == 1)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 1 {
			revoked = append(revoked, rec.ID)
		} else {
			clean = append(clean, rec.ID)
		}
	}
	return revoked, clean
}

// runParallel partitions reqs across nworkers goroutines and applies fn
// to each id; the return is a full barrier, so counter reads after it
// are quiescent.
func runParallel(t *testing.T, nworkers int, reqs []ids.PhotoID, fn func(ids.PhotoID)) {
	t.Helper()
	var wg sync.WaitGroup
	chunk := (len(reqs) + nworkers - 1) / nworkers
	for w := 0; w < nworkers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(reqs) {
			hi = len(reqs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(part []ids.PhotoID) {
			defer wg.Done()
			for _, id := range part {
				fn(id)
			}
		}(reqs[lo:hi])
	}
	wg.Wait()
}

// checkConservation asserts the outcome partition sums to the total,
// and that the obs registry view agrees with the StatsSnapshot view.
func checkConservation(t *testing.T, phase string, v *proxy.Validator) proxy.StatsSnapshot {
	t.Helper()
	st := v.Stats()
	sum := st.FilterMisses + st.CacheHits + st.LedgerQueries +
		st.StaleServed + st.Unavailable + st.BreakerFastFails
	if st.Total != sum {
		t.Fatalf("%s: conservation violated: total %d != outcome sum %d (%+v)", phase, st.Total, sum, st)
	}
	snap := v.Registry().Snapshot()
	if got, ok := obs.Value(snap, "irs_proxy_validations_total"); !ok || uint64(got) != st.Total {
		t.Fatalf("%s: registry total %v (ok=%v) disagrees with snapshot %d", phase, got, ok, st.Total)
	}
	return st
}

func TestMetricsConservation(t *testing.T) {
	for _, shards := range []int{1, 8} {
		for _, workers := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("shards=%d_workers=%d", shards, workers), func(t *testing.T) {
				testConservation(t, shards, workers)
			})
		}
	}
}

func testConservation(t *testing.T, shards, workers int) {
	now := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	l, err := ledger.New(ledger.Config{ID: 1, Shards: shards, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// 96 claims: 48 revoked at birth (filter members), 48 clean. The
	// first 32 revoked ids feed the cached/stale phases; the last 16
	// stay cold so the outage phase has nothing stale to fall back on.
	revoked, clean := claimPopulation(t, l, 96)
	warm, cold := revoked[:32], revoked[32:]
	if _, err := l.BuildSnapshot(); err != nil {
		t.Fatal(err)
	}
	seq, filter, err := l.FilterSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(wire.NewServer(l, ""))
	defer srv.Close()
	svc := &outageService{Service: wire.NewClient(srv.URL, "")}

	cacheTTL := time.Minute
	v := proxy.NewValidator(proxy.Config{
		CacheCapacity: 1024,
		CacheTTL:      cacheTTL,
		UseFilter:     true,
		Stripes:       4,
		Degrade:       proxy.DegradePolicy{Mode: proxy.DegradeFailOpenFresh, StaleTTL: time.Hour},
		Breaker:       proxy.BreakerConfig{Enabled: true, FailureThreshold: 3, Cooldown: 5 * time.Second},
		Clock:         clock,
		Obs:           obs.NewRegistry(),
	}, func(id ids.PhotoID) (*ledger.StatusProof, error) {
		return svc.Status(id)
	})
	v.SetBatchQuery(func(_ ids.LedgerID, page []ids.PhotoID) ([]*ledger.StatusProof, error) {
		return svc.StatusBatch(page)
	})
	v.SetFilter(1, seq, filter)

	validate := func(id ids.PhotoID) {
		_, _ = v.Validate(id) // outage-phase errors are the point
	}

	// Phase 1 — fresh: revoked ids are filter members, so each of the 32
	// first-time validations queries the ledger.
	runParallel(t, workers, warm, validate)
	st := checkConservation(t, "fresh", v)
	if st.LedgerQueries != uint64(len(warm)) {
		t.Fatalf("fresh: ledger queries %d, want %d", st.LedgerQueries, len(warm))
	}

	// Phase 2 — cached: the same ids again, inside the TTL.
	runParallel(t, workers, warm, validate)
	st = checkConservation(t, "cached", v)
	if st.CacheHits != uint64(len(warm)) {
		t.Fatalf("cached: cache hits %d, want %d", st.CacheHits, len(warm))
	}

	// Phase 3 — filtered: clean ids short-circuit at the revocation
	// filter (barring false positives, which land in the query/cache
	// columns and still conserve).
	runParallel(t, workers, clean, validate)
	st = checkConservation(t, "filtered", v)
	if st.FilterMisses == 0 {
		t.Fatal("filtered: expected at least one filter fast-path")
	}

	// Phase 4 — batch path: pages mixing cached and clean ids.
	page := append(append([]ids.PhotoID(nil), warm[:8]...), clean[:8]...)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := v.ValidateBatch(page); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	checkConservation(t, "batch", v)

	// Phase 5 — outage window, stale serving: every cached proof is past
	// its TTL but within the stale window, and the ledger is down.
	now = now.Add(cacheTTL + time.Minute)
	svc.down.Store(true)
	runParallel(t, workers, warm, validate)
	st = checkConservation(t, "stale", v)
	if st.StaleServed != uint64(len(warm)) {
		t.Fatalf("stale: stale served %d, want %d", st.StaleServed, len(warm))
	}

	// Phase 6 — outage, nothing cached: cold revoked ids fail upstream
	// until the breaker trips, then fast-fail. The split between the two
	// columns depends on interleaving; the sum and the trip do not.
	before := st
	for round := 0; round < 3; round++ {
		runParallel(t, workers, cold, validate)
		st = checkConservation(t, fmt.Sprintf("outage round %d", round), v)
	}
	failed := (st.Unavailable + st.BreakerFastFails) - (before.Unavailable + before.BreakerFastFails)
	if want := uint64(3 * len(cold)); failed != want {
		t.Fatalf("outage: unavailable+fastfail delta %d, want %d", failed, want)
	}
	if st.BreakerFastFails == 0 {
		t.Fatal("outage: breaker never fast-failed")
	}

	// Phase 7 — recovery: ledger back, breaker cooldown lapsed; cold ids
	// resolve as fresh queries again.
	svc.down.Store(false)
	now = now.Add(time.Minute)
	runParallel(t, workers, cold, validate)
	checkConservation(t, "recovery", v)
}
