// Package integration exercises the full IRS stack the way a deployment
// would run it: every interaction over real HTTP, multiple ledgers,
// cameras, proxies, aggregators, the relay, and the appeals process —
// plus the failure modes (dead ledgers, stale filters) that unit tests
// cannot see.
package integration

import (
	"crypto/ed25519"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"irs/internal/aggregator"
	"irs/internal/appeals"
	"irs/internal/camera"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/proxy"
	"irs/internal/relay"
	"irs/internal/tokens"
	"irs/internal/watermark"
	"irs/internal/wire"
)

// deployment is a two-ledger HTTP-wired IRS installation.
type deployment struct {
	ledgers    map[ids.LedgerID]*ledger.Ledger
	ledgerURLs map[ids.LedgerID]string
	dir        *wire.Directory
	proxySrv   *httptest.Server
	proxy      *proxy.Server
	clock      *time.Time
}

func newDeployment(t *testing.T, adminToken string) *deployment {
	t.Helper()
	now := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	d := &deployment{
		ledgers:    map[ids.LedgerID]*ledger.Ledger{},
		ledgerURLs: map[ids.LedgerID]string{},
		dir:        wire.NewDirectory(),
		clock:      &now,
	}
	clock := func() time.Time { return *d.clock }
	for _, id := range []ids.LedgerID{1, 2} {
		l, err := ledger.New(ledger.Config{ID: id, Clock: clock})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(wire.NewServer(l, adminToken))
		t.Cleanup(func() { srv.Close(); l.Close() })
		d.ledgers[id] = l
		d.ledgerURLs[id] = srv.URL
		d.dir.Register(id, wire.NewClient(srv.URL, adminToken))
	}
	d.proxy = proxy.NewServer(proxy.Config{UseFilter: true, CacheCapacity: 1024, Clock: clock}, d.dir)
	d.proxySrv = httptest.NewServer(d.proxy)
	t.Cleanup(d.proxySrv.Close)
	return d
}

func (d *deployment) refresh(t *testing.T) {
	t.Helper()
	for _, l := range d.ledgers {
		if _, err := l.BuildSnapshot(); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(d.proxySrv.URL+"/v1/refresh", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refresh status %d", resp.StatusCode)
	}
}

func (d *deployment) camera(t *testing.T, lid ids.LedgerID) *camera.Camera {
	t.Helper()
	return camera.New(wire.NewClient(d.ledgerURLs[lid], ""), d.ledgerURLs[lid], nil)
}

func TestAppealEntirelyOverHTTP(t *testing.T) {
	// The §5 attack and its remedy, with every hop on the wire —
	// including the admin-token-guarded permanent revocation.
	d := newDeployment(t, "admin-sekrit")
	victim := d.camera(t, 1)
	attacker := d.camera(t, 2)

	orig := victim.Shoot(1, 192, 128)
	labeled, owned, err := victim.ClaimAndLabel(orig)
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	*d.clock = d.clock.Add(time.Hour)

	stolen, err := watermark.Erase(labeled, watermark.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	stolen.Meta.StripAll()
	attackCopy, attackOwned, err := attacker.ClaimAndLabel(stolen)
	if err != nil {
		t.Fatal(err)
	}

	// Adjudication runs at ledger 2 (in-process, as the ledger
	// operator), but the resulting permanent revocation is also
	// exercised through the HTTP admin endpoint to prove the wire path.
	adj := appeals.NewAdjudicator(d.ledgers[2], nil)
	adj.TrustLedger(1, d.ledgers[1].TimestampKey())
	v, err := adj.Decide(&appeals.Complaint{
		Original:       orig,
		OriginalToken:  owned.Receipt.Timestamp,
		OriginalLedger: 1,
		Copy:           attackCopy,
		ContestedID:    attackOwned.ID,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != appeals.Upheld {
		t.Fatalf("verdict %v (%s)", v.Outcome, v.Detail)
	}
	// Admin endpoint: revoking an already-permanently-revoked claim is
	// idempotent at the HTTP layer.
	adminClient := wire.NewClient(d.ledgerURLs[2], "admin-sekrit")
	if err := adminClient.PermanentRevoke(attackOwned.ID); err != nil {
		t.Fatalf("admin revoke over HTTP: %v", err)
	}
	proof, err := adminClient.Status(attackOwned.ID)
	if err != nil {
		t.Fatal(err)
	}
	if proof.State != ledger.StatePermanentlyRevoked {
		t.Errorf("state %v", proof.State)
	}
}

func TestLedgerOutageDefaultDeny(t *testing.T) {
	// Goal #3 posture under failure: if validation cannot complete, the
	// photo must not display.
	l, err := ledger.New(ledger.Config{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := httptest.NewServer(wire.NewServer(l, ""))
	dir := wire.NewDirectory()
	dir.Register(1, wire.NewClient(srv.URL, ""))

	cam := camera.New(wire.NewClient(srv.URL, ""), srv.URL, nil)
	_, owned, err := cam.ClaimAndLabel(cam.Shoot(2, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	v := proxy.NewValidator(proxy.Config{UseFilter: true}, func(id ids.PhotoID) (*ledger.StatusProof, error) {
		c, err := dir.For(id)
		if err != nil {
			return nil, err
		}
		return c.Status(id)
	})
	// No filter held → every validation needs the ledger. Kill it.
	srv.Close()
	if _, err := v.Validate(owned.ID); err == nil {
		t.Fatal("validation succeeded against a dead ledger")
	}
	// The browser-extension policy turns that error into deny — covered
	// by core.View; here we assert the error actually propagates.
}

func TestStaleFilterStillSafe(t *testing.T) {
	// A proxy holding yesterday's filter can answer "not revoked" for a
	// photo revoked since — bounded staleness is Nongoal #4. But it must
	// NEVER answer "not revoked" for a photo that was already revoked
	// when the filter was built.
	d := newDeployment(t, "")
	cam := d.camera(t, 1)

	labeledOld, ownedOld, err := cam.ClaimAndLabel(cam.Shoot(3, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	_ = labeledOld
	if err := cam.Revoke(ownedOld.ID); err != nil {
		t.Fatal(err)
	}
	d.refresh(t) // filter includes ownedOld

	// New photo claimed and revoked *after* the filter was built.
	_, ownedNew, err := cam.ClaimAndLabel(cam.Shoot(4, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if err := cam.Revoke(ownedNew.ID); err != nil {
		t.Fatal(err)
	}
	// No refresh: the proxy's filter is stale.

	val := d.proxy.Validator()
	resOld, err := val.Validate(ownedOld.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resOld.State != ledger.StateRevoked {
		t.Errorf("already-revoked photo passed: %v via %v", resOld.State, resOld.Source)
	}
	resNew, err := val.Validate(ownedNew.ID)
	if err != nil {
		t.Fatal(err)
	}
	// The stale filter misses the new revocation (filter answers
	// active); that is the documented propagation window...
	if resNew.Source == proxy.SourceFilter && resNew.State == ledger.StateActive {
		// ...and it must close after the next refresh.
		d.refresh(t)
		resNew2, err := val.Validate(ownedNew.ID)
		if err != nil {
			t.Fatal(err)
		}
		if resNew2.State != ledger.StateRevoked {
			t.Errorf("revocation did not propagate after refresh: %v", resNew2.State)
		}
	} else if resNew.State != ledger.StateRevoked {
		t.Errorf("unexpected stale answer: %v via %v", resNew.State, resNew.Source)
	}
}

func TestRelayAgainstLiveProxyStack(t *testing.T) {
	// Oblivious path wired to a real validator: client → ingress →
	// egress → proxy.Validator → ledger HTTP.
	d := newDeployment(t, "")
	cam := d.camera(t, 1)
	_, owned, err := cam.ClaimAndLabel(cam.Shoot(5, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if err := cam.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	d.refresh(t)

	val := d.proxy.Validator()
	eg, err := relay.NewEgress(func(id ids.PhotoID) (ledger.State, []byte, error) {
		res, err := val.Validate(id)
		if err != nil {
			return ledger.StateUnknown, nil, err
		}
		var proof []byte
		if res.Proof != nil {
			proof = res.Proof.Marshal()
		}
		return res.State, proof, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := relay.NewClient(eg.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	q, pending, err := client.Seal(owned.ID)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := eg.Handle(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := pending.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if resp.State != ledger.StateRevoked {
		t.Errorf("relay answered %v", resp.State)
	}
	if len(resp.Proof) > 0 {
		p, err := ledger.UnmarshalProof(resp.Proof)
		if err != nil {
			t.Fatal(err)
		}
		if err := ledger.VerifyProof(d.ledgers[1].SigningKey(), p, *d.clock, time.Hour); err != nil {
			t.Errorf("relayed proof does not verify: %v", err)
		}
	}
}

func TestAnonymousPaidClaimFlow(t *testing.T) {
	// §3.2's privacy-focused ledger: buy tokens, mix, claim with a
	// mixed token. The ledger's payment record cannot identify the
	// claimer better than the mixing set.
	iss, err := tokens.NewIssuer()
	if err != nil {
		t.Fatal(err)
	}
	market := tokens.NewMarket()
	users := []string{"alice", "bob", "carol", "dave"}
	bought := map[string]*tokens.Token{}
	for _, u := range users {
		tok, err := iss.Sell(u)
		if err != nil {
			t.Fatal(err)
		}
		bought[u] = tok
		market.Deposit(u, tok)
	}
	mixed, err := market.Mix()
	if err != nil {
		t.Fatal(err)
	}

	// Alice claims, paying with her mixed token.
	l, err := ledger.New(ledger.Config{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := iss.Redeem(mixed["alice"]); err != nil {
		t.Fatalf("redeeming mixed token: %v", err)
	}
	cam := camera.New(&wire.Loopback{L: l}, "local://1", nil)
	_, owned, err := cam.ClaimAndLabel(cam.Shoot(6, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	// The ledger's leaked-database view: the redeemed serial's buyer.
	buyer, ok := iss.SoldTo(mixed["alice"].Serial)
	if !ok {
		t.Fatal("sale record missing")
	}
	// The claim record itself carries no payment linkage at all.
	rec, err := l.Record(owned.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.PubKey) != ed25519.PublicKeySize {
		t.Fatal("claim record malformed")
	}
	t.Logf("issuer's best guess for the payer: %q (actual claimer: alice)", buyer)
	// Double-spend of the same token by bob must fail.
	if err := iss.Redeem(mixed["alice"]); err != tokens.ErrDoubleSpend {
		t.Errorf("double spend: %v", err)
	}
}

func TestAggregatorFleetConvergence(t *testing.T) {
	// Three aggregators host the same labeled photo; one revocation +
	// one recheck cycle takes it down everywhere — Goal #1(ii): "without
	// individually tracking down and requesting the removal of every
	// copy".
	d := newDeployment(t, "")
	cam := d.camera(t, 1)
	labeled, owned, err := cam.ClaimAndLabel(cam.Shoot(7, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	var sites []*aggregator.Aggregator
	for i := 0; i < 3; i++ {
		agg, err := aggregator.New(aggregator.Config{Name: "site"}, d.dir)
		if err != nil {
			t.Fatal(err)
		}
		res, err := agg.Upload(labeled.Clone())
		if err != nil || !res.Accepted {
			t.Fatalf("site %d upload: %+v %v", i, res, err)
		}
		sites = append(sites, agg)
	}
	if err := cam.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	for i, agg := range sites {
		down, err := agg.RecheckAll()
		if err != nil {
			t.Fatal(err)
		}
		if down != 1 || agg.Hosts(owned.ID) {
			t.Errorf("site %d: takedown failed", i)
		}
	}
}

func TestPNMInteropWithRealListener(t *testing.T) {
	// Smoke the serve() path used by examples: raw net.Listen + proxy.
	d := newDeployment(t, "")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: d.proxy}
	go srv.Serve(ln)
	defer srv.Close()
	resp, err := http.Get("http://" + ln.Addr().String() + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stats status %d", resp.StatusCode)
	}
}
