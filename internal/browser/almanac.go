package browser

import (
	"math"
	"math/rand"
	"time"

	"irs/internal/netsim"
)

// Almanac site population.
//
// §4.3 grounds the "checks are cheap relative to page loads" argument in
// the HTTP Archive Web Almanac: a site that fully renders under 1.8 s
// has "good performance", and "over 60% of studied sites take over
// 2.5 s". The archive itself is not available offline, so
// GenerateAlmanac synthesizes a population whose baseline full-render
// distribution matches those two quantile facts — the only properties
// the paper's argument consumes. E3 prints the calibration in its
// output and the tests pin it within tolerance.

// Almanac quantile targets from the paper's citation [5].
const (
	// AlmanacGoodThreshold is the Web Almanac "good performance" bar.
	AlmanacGoodThreshold = 1800 * time.Millisecond
	// AlmanacSlowThreshold is the 2.5 s mark that over 60% of sites
	// exceed.
	AlmanacSlowThreshold = 2500 * time.Millisecond
)

// AlmanacSite is one generated site: its pre-sampled plan plus the
// per-site speed multiplier used, for diagnostics.
type AlmanacSite struct {
	Plan  PagePlan
	Scale float64
}

// GenerateAlmanac draws n sites. labeledFraction sets how many images
// carry IRS labels (bootstrap-phase adoption is partial); check is the
// revocation check latency distribution.
func GenerateAlmanac(n int, seed int64, labeledFraction float64, check netsim.Dist) []AlmanacSite {
	rng := rand.New(rand.NewSource(seed))
	sites := make([]AlmanacSite, n)
	for i := range sites {
		// Per-site speed multiplier: some sites are CDN-fronted, some
		// are slow origin-served pages. A lognormal multiplier keeps the
		// heavy slow tail the archive shows.
		mult := math.Exp(0.45 * rng.NormFloat64())
		spec := PageSpec{
			NImagesMin:      5,
			NImagesMax:      40,
			HTML:            netsim.LogNormal{Median: scaleDur(500*time.Millisecond, mult), Sigma: 0.4},
			ImageFetch:      netsim.LogNormal{Median: scaleDur(700*time.Millisecond, mult), Sigma: 0.5},
			MetaDelay:       netsim.Fixed(40 * time.Millisecond),
			Check:           check,
			LabeledFraction: labeledFraction,
		}
		sites[i] = AlmanacSite{Plan: spec.Sample(rng), Scale: mult}
	}
	return sites
}

func scaleDur(d time.Duration, mult float64) time.Duration {
	return time.Duration(float64(d) * mult)
}
