package browser

import (
	"math/rand"
	"testing"
	"time"

	"irs/internal/netsim"
)

// TestBatchedSingleImage: one labeled image is one RPC dispatched at
// metadata time, exactly like ModePipelined arithmetic.
func TestBatchedSingleImage(t *testing.T) {
	p := handPlan(200*time.Millisecond, img(500*time.Millisecond, 50*time.Millisecond))
	r := Load(p, ModeBatched, 6)
	// HTML 100 + meta 50 + check 200 = 350 < body done 600: hidden.
	if r.FullRender != 600*time.Millisecond {
		t.Errorf("FullRender %v, want 600ms", r.FullRender)
	}
	if r.BatchRPCs != 1 || r.ChecksIssued != 1 || r.CheckStalled != 0 {
		t.Errorf("rpcs %d checks %d stalled %d", r.BatchRPCs, r.ChecksIssued, r.CheckStalled)
	}
}

// TestBatchedRoundAccumulation: arrivals during an in-flight RPC ride
// the next round together.
func TestBatchedRoundAccumulation(t *testing.T) {
	// Three images, metadata at 150ms, 200ms, 250ms (HTML 100ms + meta
	// offsets 50/100/150). Round 1 departs at 150ms with image 0 only
	// (check 300ms → lands 450ms). Images 1 and 2 arrive meanwhile and
	// form round 2 at 450ms, landing 750ms.
	p := handPlan(300*time.Millisecond,
		img(900*time.Millisecond, 50*time.Millisecond),
		img(900*time.Millisecond, 100*time.Millisecond),
		img(900*time.Millisecond, 150*time.Millisecond),
	)
	r := Load(p, ModeBatched, 6)
	if r.BatchRPCs != 2 {
		t.Errorf("rpcs %d, want 2", r.BatchRPCs)
	}
	if r.ChecksIssued != 3 {
		t.Errorf("checks %d, want 3", r.ChecksIssued)
	}
	// All checks land before the 1000ms body completions: no stall.
	if r.CheckStalled != 0 || r.FullRender != 1000*time.Millisecond {
		t.Errorf("stalled %d render %v", r.CheckStalled, r.FullRender)
	}
}

// TestBatchedRoundLatencyIsMax: a round's latency is its slowest
// member's draw.
func TestBatchedRoundLatencyIsMax(t *testing.T) {
	p := PagePlan{
		HTMLLatency: 100 * time.Millisecond,
		Images: []ImagePlan{
			img(200*time.Millisecond, 50*time.Millisecond),
			img(200*time.Millisecond, 50*time.Millisecond),
		},
		CheckLatency: []time.Duration{
			100 * time.Millisecond,
			400 * time.Millisecond,
		},
	}
	r := Load(p, ModeBatched, 6)
	// Both metas at 150ms → one round, latency max(100,400)=400 →
	// done 550ms; bodies done at 300ms → both stall, render 550ms.
	if r.BatchRPCs != 1 {
		t.Errorf("rpcs %d, want 1", r.BatchRPCs)
	}
	if r.FullRender != 550*time.Millisecond {
		t.Errorf("FullRender %v, want 550ms", r.FullRender)
	}
	if r.CheckStalled != 2 {
		t.Errorf("stalled %d, want 2", r.CheckStalled)
	}
}

// TestBatchedFewerRPCs: on the pinterest-like page RPC count drops
// versus per-image modes while renders never beat the no-check
// baseline. How much it drops depends on the check latency: fast
// checks drain the pending set almost one-by-one (metadata trickles in
// as connections free up), slow checks accumulate big rounds.
func TestBatchedFewerRPCs(t *testing.T) {
	cases := []struct {
		check   time.Duration
		maxFrac float64 // RPCs / checks upper bound
	}{
		{80 * time.Millisecond, 0.92},
		{250 * time.Millisecond, 0.55},
	}
	for _, tc := range cases {
		spec := PinterestSpec(netsim.Fixed(tc.check))
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 20; trial++ {
			p := spec.Sample(rng)
			batched := Load(p, ModeBatched, 6)
			pipelined := Load(p, ModePipelined, 6)
			if batched.ChecksIssued != pipelined.ChecksIssued {
				t.Fatalf("checks %d vs %d", batched.ChecksIssued, pipelined.ChecksIssued)
			}
			frac := float64(batched.BatchRPCs) / float64(batched.ChecksIssued)
			if frac > tc.maxFrac {
				t.Errorf("check=%v trial %d: %d RPCs for %d checks (%.2f > %.2f)",
					tc.check, trial, batched.BatchRPCs, batched.ChecksIssued, frac, tc.maxFrac)
			}
			base := Load(p, ModeOff, 6)
			if batched.FullRender < base.FullRender {
				t.Errorf("trial %d: batched render %v beat baseline %v", trial, batched.FullRender, base.FullRender)
			}
		}
	}
}

// TestBatchedDeterministic: same plan, same result.
func TestBatchedDeterministic(t *testing.T) {
	spec := PinterestSpec(netsim.Uniform{Min: 20 * time.Millisecond, Max: 200 * time.Millisecond})
	p := spec.Sample(rand.New(rand.NewSource(5)))
	a := Load(p, ModeBatched, 6)
	b := Load(p, ModeBatched, 6)
	if a != b {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestBatchedUnlabeledSkipped: unlabeled images neither check nor ride
// rounds.
func TestBatchedUnlabeledSkipped(t *testing.T) {
	p := handPlan(100*time.Millisecond,
		ImagePlan{FetchDur: 500 * time.Millisecond, MetaOffset: 50 * time.Millisecond, Labeled: false},
	)
	r := Load(p, ModeBatched, 6)
	if r.ChecksIssued != 0 || r.BatchRPCs != 0 {
		t.Errorf("unlabeled image checked: %+v", r)
	}
	if r.FullRender != 600*time.Millisecond {
		t.Errorf("FullRender %v", r.FullRender)
	}
}

// TestPerImageModesUnchangedByBatchedCode: existing modes must report
// zero BatchRPCs and identical numbers to the pre-batched
// implementation (spot-checked via hand arithmetic elsewhere; here we
// pin the new field).
func TestPerImageModesUnchangedByBatchedCode(t *testing.T) {
	spec := PinterestSpec(netsim.Fixed(80 * time.Millisecond))
	p := spec.Sample(rand.New(rand.NewSource(3)))
	for _, m := range []Mode{ModeOff, ModePipelined, ModeBlocking} {
		if r := Load(p, m, 6); r.BatchRPCs != 0 {
			t.Errorf("%v: BatchRPCs %d", m, r.BatchRPCs)
		}
	}
}
