package browser

import (
	"container/heap"
	"math/rand"
	"time"

	"irs/internal/netsim"
)

// Scroll-session model (§4.3): the paper's prototype observation is
// about *scrolling* — "we did not notice additional delay when
// scrolling through a variety of web sites containing claimed images."
//
// Scrolling differs from a page load: images lazy-load as they approach
// the viewport, so each image has a lookahead budget (the time between
// its fetch starting and the user actually reaching it). A revocation
// check only becomes *visible* if the image would have been ready
// without IRS but is still awaiting its check when scrolled into view.
// ScrollSession counts exactly those events.

// ScrollSpec parameterizes a scroll session.
type ScrollSpec struct {
	// NImages is the feed length.
	NImages int
	// RowsPerSecond is the scroll speed (one image per row).
	RowsPerSecond float64
	// LookaheadRows is how far below the viewport the browser starts
	// fetching (lazy-loading margin; browsers use a few viewports).
	LookaheadRows int
	// ImageFetch, MetaDelay, Check are the latency distributions, as in
	// PageSpec.
	ImageFetch netsim.Dist
	MetaDelay  netsim.Dist
	Check      netsim.Dist
	// Connections bounds concurrent image fetches (0 = 6).
	Connections int
	// LabeledFraction is the fraction of images needing checks.
	LabeledFraction float64
}

// ScrollResult reports one evaluated session.
type ScrollResult struct {
	// BaselineStalls counts images not yet fetched when scrolled into
	// view — stalls the user suffers with or without IRS.
	BaselineStalls int
	// AddedStalls counts images that were fetched in time but whose
	// check was still pending at view time: the IRS-visible events.
	AddedStalls int
	// AddedStallTime is the total extra waiting attributable to checks.
	AddedStallTime time.Duration
	// ChecksIssued counts revocation checks.
	ChecksIssued int
}

// ScrollSession evaluates one session with pre-sampled draws from rng.
// The same rng seed gives identical network behaviour across check
// configurations, so differences are attributable to the checks.
func ScrollSession(spec ScrollSpec, mode Mode, rng *rand.Rand) ScrollResult {
	conns := spec.Connections
	if conns <= 0 {
		conns = 6
	}
	rowTime := time.Duration(float64(time.Second) / spec.RowsPerSecond)
	lookahead := time.Duration(spec.LookaheadRows) * rowTime

	pool := make(connHeap, conns)
	heap.Init(&pool)

	var res ScrollResult
	for i := 0; i < spec.NImages; i++ {
		viewAt := time.Duration(i) * rowTime
		earliest := viewAt - lookahead
		if earliest < 0 {
			earliest = 0
		}
		// A connection must be free AND the image must be within the
		// lazy-load margin.
		start := pool[0]
		if start < earliest {
			start = earliest
		}
		fetch := spec.ImageFetch.Sample(rng)
		meta := spec.MetaDelay.Sample(rng)
		if meta > fetch {
			meta = fetch
		}
		check := spec.Check.Sample(rng)
		labeled := rng.Float64() < spec.LabeledFraction

		bodyDone := start + fetch
		heap.Pop(&pool)
		heap.Push(&pool, bodyDone)

		displayable := bodyDone
		if mode != ModeOff && labeled {
			res.ChecksIssued++
			var checkDone time.Duration
			switch mode {
			case ModePipelined:
				checkDone = start + meta + check
			case ModeBlocking:
				checkDone = bodyDone + check
			}
			if checkDone > displayable {
				displayable = checkDone
			}
		}
		switch {
		case bodyDone > viewAt:
			// The network was the bottleneck; IRS only adds on top.
			res.BaselineStalls++
			if displayable > bodyDone {
				res.AddedStallTime += displayable - bodyDone
			}
		case displayable > viewAt:
			// Ready without IRS, not ready with it: the visible event.
			res.AddedStalls++
			res.AddedStallTime += displayable - viewAt
		}
	}
	return res
}

// FeedSpec returns the default photo-feed scroll model: a long feed of
// labeled photos on a residential connection, scrolled at a leisurely
// one row per 1.5 s with a two-viewport (8-row) lazy-load margin.
func FeedSpec(check netsim.Dist, rowsPerSecond float64) ScrollSpec {
	return ScrollSpec{
		NImages:         200,
		RowsPerSecond:   rowsPerSecond,
		LookaheadRows:   8,
		ImageFetch:      netsim.Uniform{Min: 200 * time.Millisecond, Max: 900 * time.Millisecond},
		MetaDelay:       netsim.Fixed(50 * time.Millisecond),
		Check:           check,
		Connections:     6,
		LabeledFraction: 1.0,
	}
}
