package browser

import (
	"math/rand"
	"testing"
	"time"

	"irs/internal/netsim"
)

func TestScrollNoChecksNoAddedStalls(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	spec := FeedSpec(netsim.Fixed(100*time.Millisecond), 0.7)
	res := ScrollSession(spec, ModeOff, rng)
	if res.AddedStalls != 0 || res.AddedStallTime != 0 {
		t.Errorf("ModeOff added stalls: %+v", res)
	}
	if res.ChecksIssued != 0 {
		t.Errorf("ModeOff issued checks")
	}
}

func TestScrollLeisurelyPipelinedInvisible(t *testing.T) {
	// The paper's prototype observation: at normal scroll speeds with
	// sub-250ms checks, IRS adds nothing visible.
	rng := rand.New(rand.NewSource(2))
	spec := FeedSpec(netsim.Fixed(200*time.Millisecond), 0.7)
	res := ScrollSession(spec, ModePipelined, rng)
	if res.AddedStalls != 0 {
		t.Errorf("leisurely scroll: %d added stalls", res.AddedStalls)
	}
	if res.ChecksIssued != spec.NImages {
		t.Errorf("checks %d, want %d", res.ChecksIssued, spec.NImages)
	}
}

func TestScrollFastFlingShowsBaselineStalls(t *testing.T) {
	// Flinging outruns the network itself; those are baseline stalls,
	// not IRS's fault — the model must attribute them correctly.
	rng := rand.New(rand.NewSource(3))
	spec := FeedSpec(netsim.Fixed(100*time.Millisecond), 20)
	base := ScrollSession(spec, ModeOff, rng)
	if base.BaselineStalls == 0 {
		t.Error("fast fling produced zero baseline stalls — model miscalibrated")
	}
}

func TestScrollSlowChecksBecomeVisible(t *testing.T) {
	// Very slow checks (1.5s) must eventually show up even at leisurely
	// speeds: 8 rows of lookahead at 0.7 rows/s ≈ 11.4s budget, so use
	// a fast-but-human speed where budget ≈ 2.7s and the check pushes
	// past it.
	rng := rand.New(rand.NewSource(4))
	spec := FeedSpec(netsim.Fixed(3*time.Second), 3)
	res := ScrollSession(spec, ModePipelined, rng)
	if res.AddedStalls == 0 {
		t.Error("3s checks never visible at 3 rows/s — model insensitive")
	}
}

func TestScrollBlockingWorseThanPipelined(t *testing.T) {
	specOf := func() ScrollSpec { return FeedSpec(netsim.Fixed(300*time.Millisecond), 2.5) }
	pip := ScrollSession(specOf(), ModePipelined, rand.New(rand.NewSource(5)))
	blk := ScrollSession(specOf(), ModeBlocking, rand.New(rand.NewSource(5)))
	if blk.AddedStallTime < pip.AddedStallTime {
		t.Errorf("blocking stall time %v < pipelined %v", blk.AddedStallTime, pip.AddedStallTime)
	}
}

func TestScrollDeterministicUnderSeed(t *testing.T) {
	spec := FeedSpec(netsim.Fixed(150*time.Millisecond), 1)
	a := ScrollSession(spec, ModePipelined, rand.New(rand.NewSource(7)))
	b := ScrollSession(spec, ModePipelined, rand.New(rand.NewSource(7)))
	if a != b {
		t.Error("scroll session not deterministic")
	}
}

func TestScrollUnlabeledSkipsChecks(t *testing.T) {
	spec := FeedSpec(netsim.Fixed(100*time.Millisecond), 1)
	spec.LabeledFraction = 0
	res := ScrollSession(spec, ModePipelined, rand.New(rand.NewSource(8)))
	if res.ChecksIssued != 0 || res.AddedStalls != 0 {
		t.Errorf("unlabeled feed: %+v", res)
	}
}

func BenchmarkScrollSession(b *testing.B) {
	spec := FeedSpec(netsim.Fixed(100*time.Millisecond), 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ScrollSession(spec, ModePipelined, rand.New(rand.NewSource(int64(i))))
	}
}
