package browser

import (
	"math/rand"
	"testing"
	"time"

	"irs/internal/netsim"
)

// handPlan builds a small deterministic plan for arithmetic checks.
func handPlan(check time.Duration, imgs ...ImagePlan) PagePlan {
	p := PagePlan{HTMLLatency: 100 * time.Millisecond, Images: imgs}
	p.CheckLatency = make([]time.Duration, len(imgs))
	for i := range p.CheckLatency {
		p.CheckLatency[i] = check
	}
	return p
}

func img(fetch, meta time.Duration) ImagePlan {
	return ImagePlan{FetchDur: fetch, MetaOffset: meta, Labeled: true}
}

func TestLoadOffBaseline(t *testing.T) {
	p := handPlan(0, img(500*time.Millisecond, 50*time.Millisecond))
	r := Load(p, ModeOff, 6)
	if r.FCP != 100*time.Millisecond {
		t.Errorf("FCP %v", r.FCP)
	}
	if r.FullRender != 600*time.Millisecond {
		t.Errorf("FullRender %v, want 600ms", r.FullRender)
	}
	if r.ChecksIssued != 0 {
		t.Errorf("checks %d in ModeOff", r.ChecksIssued)
	}
}

func TestPipelinedHidesCheck(t *testing.T) {
	// Check finishes during remaining body transfer: zero delay.
	p := handPlan(200*time.Millisecond, img(500*time.Millisecond, 50*time.Millisecond))
	r := Load(p, ModePipelined, 6)
	if r.FullRender != 600*time.Millisecond {
		t.Errorf("FullRender %v, want 600ms (check hidden)", r.FullRender)
	}
	if r.CheckStalled != 0 {
		t.Errorf("stalled %d", r.CheckStalled)
	}
	if r.ChecksIssued != 1 {
		t.Errorf("checks %d", r.ChecksIssued)
	}
}

func TestPipelinedSlowCheckStalls(t *testing.T) {
	// meta at 50ms + 600ms check = 650ms > 500ms body.
	p := handPlan(600*time.Millisecond, img(500*time.Millisecond, 50*time.Millisecond))
	r := Load(p, ModePipelined, 6)
	want := 100*time.Millisecond + 50*time.Millisecond + 600*time.Millisecond
	if r.FullRender != want {
		t.Errorf("FullRender %v, want %v", r.FullRender, want)
	}
	if r.CheckStalled != 1 {
		t.Errorf("stalled %d", r.CheckStalled)
	}
}

func TestBlockingAlwaysAddsLatency(t *testing.T) {
	p := handPlan(200*time.Millisecond, img(500*time.Millisecond, 50*time.Millisecond))
	r := Load(p, ModeBlocking, 6)
	want := 100*time.Millisecond + 500*time.Millisecond + 200*time.Millisecond
	if r.FullRender != want {
		t.Errorf("FullRender %v, want %v", r.FullRender, want)
	}
	if r.CheckStalled != 1 {
		t.Errorf("blocking check should count as a stall")
	}
}

func TestUnlabeledImagesSkipChecks(t *testing.T) {
	im := img(500*time.Millisecond, 50*time.Millisecond)
	im.Labeled = false
	p := handPlan(time.Hour, im) // absurd check latency; must not matter
	r := Load(p, ModePipelined, 6)
	if r.ChecksIssued != 0 {
		t.Errorf("unlabeled image checked")
	}
	if r.FullRender != 600*time.Millisecond {
		t.Errorf("FullRender %v", r.FullRender)
	}
}

func TestConnectionPoolQueueing(t *testing.T) {
	// 4 equal images on 2 connections: two rounds.
	p := handPlan(0,
		img(300*time.Millisecond, 0), img(300*time.Millisecond, 0),
		img(300*time.Millisecond, 0), img(300*time.Millisecond, 0))
	r := Load(p, ModeOff, 2)
	want := 100*time.Millisecond + 600*time.Millisecond
	if r.FullRender != want {
		t.Errorf("FullRender %v, want %v", r.FullRender, want)
	}
	// Default pool when connections <= 0.
	r = Load(p, ModeOff, 0)
	if r.FullRender != 100*time.Millisecond+300*time.Millisecond {
		t.Errorf("default pool: %v", r.FullRender)
	}
}

func TestOverheadNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	spec := PinterestSpec(netsim.Fixed(150 * time.Millisecond))
	for i := 0; i < 50; i++ {
		p := spec.Sample(rng)
		if d := Overhead(p, ModePipelined, 6); d < 0 {
			t.Fatalf("negative overhead %v", d)
		}
	}
}

func TestPinterestZeroDelayCrossover(t *testing.T) {
	// §4.3: checks under 250 ms add no rendering delay on the
	// pinterest-like page; above the crossover, images start stalling.
	rng := rand.New(rand.NewSource(2))
	under := PinterestSpec(netsim.Fixed(240 * time.Millisecond))
	for i := 0; i < 30; i++ {
		p := under.Sample(rng)
		r := Load(p, ModePipelined, 6)
		if r.CheckStalled != 0 {
			t.Fatalf("check at 240ms stalled %d images", r.CheckStalled)
		}
		if Overhead(p, ModePipelined, 6) != 0 {
			t.Fatalf("check at 240ms added render delay")
		}
	}
	over := PinterestSpec(netsim.Fixed(400 * time.Millisecond))
	stalledSomewhere := false
	for i := 0; i < 30; i++ {
		p := over.Sample(rng)
		if Load(p, ModePipelined, 6).CheckStalled > 0 {
			stalledSomewhere = true
			break
		}
	}
	if !stalledSomewhere {
		t.Error("400ms checks never stalled — crossover miscalibrated")
	}
}

func TestBlockingWorseThanPipelined(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	spec := PinterestSpec(netsim.Fixed(150 * time.Millisecond))
	for i := 0; i < 20; i++ {
		p := spec.Sample(rng)
		pip := Load(p, ModePipelined, 6).FullRender
		blk := Load(p, ModeBlocking, 6).FullRender
		if blk < pip {
			t.Fatalf("blocking (%v) beat pipelined (%v)", blk, pip)
		}
	}
}

func TestSampleRespectsSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	spec := PageSpec{
		NImagesMin:      3,
		NImagesMax:      7,
		HTML:            netsim.Fixed(100 * time.Millisecond),
		ImageFetch:      netsim.Uniform{Min: 200 * time.Millisecond, Max: 300 * time.Millisecond},
		MetaDelay:       netsim.Fixed(500 * time.Millisecond), // longer than any fetch
		Check:           netsim.Fixed(10 * time.Millisecond),
		LabeledFraction: 1,
	}
	for i := 0; i < 50; i++ {
		p := spec.Sample(rng)
		if len(p.Images) < 3 || len(p.Images) > 7 {
			t.Fatalf("image count %d", len(p.Images))
		}
		for _, im := range p.Images {
			if im.MetaOffset > im.FetchDur {
				t.Fatal("meta offset exceeds fetch duration — must be clamped")
			}
			if !im.Labeled {
				t.Fatal("labeled fraction 1 produced unlabeled image")
			}
		}
		if len(p.CheckLatency) != len(p.Images) {
			t.Fatal("check latency array mismatched")
		}
	}
}

func TestAlmanacCalibration(t *testing.T) {
	sites := GenerateAlmanac(800, 42, 0.3, netsim.Fixed(50*time.Millisecond))
	if len(sites) != 800 {
		t.Fatalf("generated %d sites", len(sites))
	}
	var over25, under18 int
	renders := make([]time.Duration, len(sites))
	for i, s := range sites {
		r := Load(s.Plan, ModeOff, 6)
		renders[i] = r.FullRender
		if r.FullRender > AlmanacSlowThreshold {
			over25++
		}
		if r.FullRender < AlmanacGoodThreshold {
			under18++
		}
	}
	fracOver := float64(over25) / float64(len(sites))
	// Paper: "over 60% of studied sites take over 2.5s".
	if fracOver < 0.55 || fracOver > 0.9 {
		t.Errorf("%.1f%% of sites over 2.5s; want the paper's >60%% regime (median render %v)",
			fracOver*100, netsim.Quantile(renders, 0.5))
	}
	// And a meaningful fast cohort exists.
	if under18 == 0 {
		t.Error("no 'good performance' sites at all — distribution too slow")
	}
}

func TestAlmanacDeterministic(t *testing.T) {
	a := GenerateAlmanac(10, 7, 0.5, netsim.Fixed(time.Millisecond))
	b := GenerateAlmanac(10, 7, 0.5, netsim.Fixed(time.Millisecond))
	for i := range a {
		if a[i].Plan.HTMLLatency != b[i].Plan.HTMLLatency || len(a[i].Plan.Images) != len(b[i].Plan.Images) {
			t.Fatal("same seed differs")
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeOff.String() != "off" || ModePipelined.String() != "pipelined" || ModeBlocking.String() != "blocking" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() != "mode(9)" {
		t.Error("unknown mode string wrong")
	}
}

func BenchmarkLoadPinterest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := PinterestSpec(netsim.Fixed(100 * time.Millisecond)).Sample(rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Load(p, ModePipelined, 6)
	}
}
