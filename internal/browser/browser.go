// Package browser models an IRS-enabled browser loading photo-bearing
// pages — the paper's bootstrap-phase client (§4.1: "we need a temporary
// and partial solution ... the right place to make this intervention is
// within browser software").
//
// The model reproduces the two latency arguments of §4.3:
//
//  1. Ledger checks are cheap relative to page loads: against an HTTP
//     Archive Web Almanac-like population (almanac.go) where "good"
//     pages render under 1.8 s and over 60% of sites take over 2.5 s, a
//     sub-100 ms check is a small relative overhead (experiment E3).
//  2. Checks can be pipelined: "one can generally check a photo as soon
//     as its metadata has been downloaded", hiding the check behind the
//     remaining body transfer. On a pinterest-like page the paper
//     reports zero added render delay while checks complete within
//     250 ms; PinterestSpec is calibrated to that crossover (E4).
//
// The load model is deterministic queueing arithmetic over pre-sampled
// latencies (a PagePlan): images contend for a fixed per-host connection
// pool; each image's revocation check starts at its metadata arrival
// (ModePipelined), at body completion (ModeBlocking — the naive
// comparison arm), or never (ModeOff). Pre-sampling means all three
// modes see identical network draws, so differences are purely the
// extension's scheduling policy.
package browser

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"irs/internal/netsim"
)

// Mode is the extension's check-scheduling policy.
type Mode int

const (
	// ModeOff renders without any revocation checks (the pre-IRS
	// baseline).
	ModeOff Mode = iota
	// ModePipelined issues each image's check as soon as the image
	// metadata (and therefore its IRS label) has arrived, overlapping
	// the check with the remaining body transfer.
	ModePipelined
	// ModeBlocking issues each check only after the full image body has
	// arrived — the naive design §4.3 worries about.
	ModeBlocking
	// ModeBatched collects labeled images as their metadata arrives and
	// validates them in batch round trips: one RPC is in flight at a
	// time, each carrying every check that became ready while the
	// previous one was out. This is the client half of the StatusBatch
	// wire call — a page costs a handful of round trips instead of one
	// per image.
	ModeBatched
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModePipelined:
		return "pipelined"
	case ModeBlocking:
		return "blocking"
	case ModeBatched:
		return "batched"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ImagePlan is one image's pre-sampled network behaviour.
type ImagePlan struct {
	// FetchDur is the transfer time once a connection is assigned.
	FetchDur time.Duration
	// MetaOffset is when, within the transfer, the metadata (headers +
	// EXIF/label segment, which leads the file) is available. Always ≤
	// FetchDur.
	MetaOffset time.Duration
	// Labeled reports whether the image carries an IRS label and
	// therefore needs a check at all.
	Labeled bool
}

// PagePlan is a fully pre-sampled page load: evaluating it under any
// Mode is deterministic.
type PagePlan struct {
	// HTMLLatency is the time to fetch and parse the document; images
	// are discovered at this point.
	HTMLLatency time.Duration
	Images      []ImagePlan
	// CheckLatency holds one pre-sampled proxy round trip per image.
	CheckLatency []time.Duration
}

// PageSpec generates PagePlans.
type PageSpec struct {
	// NImagesMin and NImagesMax bound the number of images per page.
	NImagesMin, NImagesMax int
	// HTML is the document fetch latency distribution.
	HTML netsim.Dist
	// ImageFetch is the per-image transfer time distribution.
	ImageFetch netsim.Dist
	// MetaDelay is the metadata arrival offset distribution (clamped to
	// the image's transfer time).
	MetaDelay netsim.Dist
	// Check is the revocation check round trip distribution.
	Check netsim.Dist
	// LabeledFraction is the fraction of images carrying IRS labels;
	// unlabeled images never trigger checks.
	LabeledFraction float64
}

// Sample draws a PagePlan.
func (s PageSpec) Sample(rng *rand.Rand) PagePlan {
	n := s.NImagesMin
	if s.NImagesMax > s.NImagesMin {
		n += rng.Intn(s.NImagesMax - s.NImagesMin + 1)
	}
	p := PagePlan{
		HTMLLatency:  s.HTML.Sample(rng),
		Images:       make([]ImagePlan, n),
		CheckLatency: make([]time.Duration, n),
	}
	for i := 0; i < n; i++ {
		fetch := s.ImageFetch.Sample(rng)
		meta := s.MetaDelay.Sample(rng)
		if meta > fetch {
			meta = fetch
		}
		p.Images[i] = ImagePlan{
			FetchDur:   fetch,
			MetaOffset: meta,
			Labeled:    rng.Float64() < s.LabeledFraction,
		}
		p.CheckLatency[i] = s.Check.Sample(rng)
	}
	return p
}

// LoadResult reports one evaluated page load.
type LoadResult struct {
	// FCP is the first contentful paint: document fetched and parsed.
	// Checks never delay it in any mode (the extension gates images, not
	// text).
	FCP time.Duration
	// FullRender is when the last image became displayable.
	FullRender time.Duration
	// ChecksIssued counts revocation checks.
	ChecksIssued int
	// CheckStalled counts images whose display waited on a check (the
	// check finished after the body).
	CheckStalled int
	// BatchRPCs counts validation round trips under ModeBatched (zero in
	// the per-image modes, where ChecksIssued is the round-trip count).
	BatchRPCs int
}

// connHeap tracks connection free times.
type connHeap []time.Duration

func (h connHeap) Len() int           { return len(h) }
func (h connHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h connHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *connHeap) Push(x any)        { *h = append(*h, x.(time.Duration)) }
func (h *connHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// Load evaluates a plan under a mode with the given per-host connection
// pool size (browsers conventionally use 6).
func Load(p PagePlan, mode Mode, connections int) LoadResult {
	if connections <= 0 {
		connections = 6
	}
	res := LoadResult{FCP: p.HTMLLatency, FullRender: p.HTMLLatency}
	conns := make(connHeap, connections)
	for i := range conns {
		conns[i] = p.HTMLLatency // images discovered when HTML parsed
	}
	heap.Init(&conns)
	// pending collects labeled images for ModeBatched: metadata arrival
	// (when the check becomes ready) and body completion.
	type pendingCheck struct {
		idx      int
		meta     time.Duration
		bodyDone time.Duration
	}
	var pending []pendingCheck
	for i, img := range p.Images {
		start := conns[0]
		bodyDone := start + img.FetchDur
		heap.Pop(&conns)
		heap.Push(&conns, bodyDone)

		if mode == ModeBatched && img.Labeled {
			// Display resolution is deferred to the round simulation
			// below; bodyDone still rides along for the stall test.
			res.ChecksIssued++
			pending = append(pending, pendingCheck{idx: i, meta: start + img.MetaOffset, bodyDone: bodyDone})
			continue
		}
		displayable := bodyDone
		if mode != ModeOff && img.Labeled {
			res.ChecksIssued++
			var checkDone time.Duration
			switch mode {
			case ModePipelined:
				checkDone = start + img.MetaOffset + p.CheckLatency[i]
			case ModeBlocking:
				checkDone = bodyDone + p.CheckLatency[i]
			}
			if checkDone > displayable {
				displayable = checkDone
				res.CheckStalled++
			}
		}
		if displayable > res.FullRender {
			res.FullRender = displayable
		}
	}
	if len(pending) > 0 {
		// One batch RPC in flight at a time: each round departs as soon
		// as the previous answer lands (or the first metadata arrives)
		// and carries every check that became ready meanwhile. The round
		// trip takes as long as its slowest member's pre-sampled check —
		// same draws as the per-image modes, so mode comparisons isolate
		// scheduling policy. Pages stay far under the wire batch limit
		// (≤60 images vs 256), so rounds never split.
		sort.Slice(pending, func(a, b int) bool {
			if pending[a].meta != pending[b].meta {
				return pending[a].meta < pending[b].meta
			}
			return pending[a].idx < pending[b].idx
		})
		now := pending[0].meta
		for j := 0; j < len(pending); {
			if pending[j].meta > now {
				now = pending[j].meta
			}
			k := j
			var lat time.Duration
			for k < len(pending) && pending[k].meta <= now {
				if p.CheckLatency[pending[k].idx] > lat {
					lat = p.CheckLatency[pending[k].idx]
				}
				k++
			}
			res.BatchRPCs++
			done := now + lat
			for ; j < k; j++ {
				displayable := pending[j].bodyDone
				if done > displayable {
					displayable = done
					res.CheckStalled++
				}
				if displayable > res.FullRender {
					res.FullRender = displayable
				}
			}
			now = done
		}
	}
	return res
}

// Overhead evaluates the plan under baseline and mode, returning the
// added full-render delay (never negative: both runs share all draws).
func Overhead(p PagePlan, mode Mode, connections int) time.Duration {
	base := Load(p, ModeOff, connections)
	with := Load(p, mode, connections)
	return with.FullRender - base.FullRender
}

// PinterestSpec is the photo-heavy page model of §4.3's overlap claim:
// dozens of images whose bodies take 300 ms–1.2 s to transfer with
// metadata in the first 50 ms. The slowest-to-slack image has
// 300 − 50 = 250 ms of body transfer remaining at metadata time, so
// checks within 250 ms add zero render delay — the crossover the paper
// reports.
func PinterestSpec(check netsim.Dist) PageSpec {
	return PageSpec{
		NImagesMin:      40,
		NImagesMax:      60,
		HTML:            netsim.Fixed(400 * time.Millisecond),
		ImageFetch:      netsim.Uniform{Min: 300 * time.Millisecond, Max: 1200 * time.Millisecond},
		MetaDelay:       netsim.Fixed(50 * time.Millisecond),
		Check:           check,
		LabeledFraction: 1.0,
	}
}
