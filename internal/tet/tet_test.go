package tet

import (
	"math"
	"testing"
)

func TestRunValidation(t *testing.T) {
	p := DefaultParams()
	p.Months = 0
	if _, err := Run(p, DefaultAggregators()); err == nil {
		t.Error("Months=0 accepted")
	}
	p = DefaultParams()
	p.FirstMoverShare = 1.5
	if _, err := Run(p, DefaultAggregators()); err == nil {
		t.Error("share > 1 accepted")
	}
}

func TestNoFirstMoversNoTransformation(t *testing.T) {
	// TET criterion (i): without deployable first movers nothing starts.
	p := DefaultParams()
	p.FirstMoverShare = 0
	r, err := Run(p, DefaultAggregators())
	if err != nil {
		t.Fatal(err)
	}
	if r.Final.UserAdoption != 0 {
		t.Errorf("adoption %g with zero first movers", r.Final.UserAdoption)
	}
	if len(r.AdoptionMonth) != 0 {
		t.Errorf("aggregators adopted with zero user base: %v", r.AdoptionMonth)
	}
	if r.TriggerMonth != -1 {
		t.Error("photo trigger crossed with no users")
	}
}

func TestBaselineNarrative(t *testing.T) {
	// The paper's intended arc under default calibration: the bootstrap
	// grows within the first-mover base, the privacy-branded aggregator
	// adopts first, liability flips the rest, and adoption ends far
	// above the first-mover ceiling.
	p := DefaultParams()
	aggs := DefaultAggregators()
	r, err := Run(p, aggs)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.AdoptionMonth) != len(aggs) {
		t.Fatalf("only %d/%d aggregators adopted: %v", len(r.AdoptionMonth), len(aggs), r.AdoptionMonth)
	}
	mPrivacy := r.AdoptionMonth["privacy-first"]
	mEngagement := r.AdoptionMonth["engagement-max"]
	if mPrivacy >= mEngagement {
		t.Errorf("privacy-first adopted at %d, engagement-max at %d — order inverted", mPrivacy, mEngagement)
	}
	if r.Final.UserAdoption <= p.FirstMoverShare {
		t.Errorf("final adoption %.3f never escaped the first-mover ceiling %.3f",
			r.Final.UserAdoption, p.FirstMoverShare)
	}
	if r.TriggerMonth < 0 {
		t.Error("photo base never reached the 100B trigger under defaults")
	}
}

func TestAdoptionMonotoneInLiability(t *testing.T) {
	p := DefaultParams()
	first := func(lw float64) int {
		p.LiabilityWeight = lw
		r, err := Run(p, DefaultAggregators())
		if err != nil {
			t.Fatal(err)
		}
		m, ok := r.AdoptionMonth["engagement-max"]
		if !ok {
			return p.Months + 1
		}
		return m
	}
	weak := first(0.5)
	strong := first(4.0)
	if strong > weak {
		t.Errorf("stronger liability adopted later: %d vs %d", strong, weak)
	}
}

func TestSpilloverLiftsCeiling(t *testing.T) {
	p := DefaultParams()
	r, err := Run(p, DefaultAggregators())
	if err != nil {
		t.Fatal(err)
	}
	// Before any aggregator adopts, adoption is bounded by the
	// first-mover share.
	firstAdoption := p.Months
	for _, m := range r.AdoptionMonth {
		if m < firstAdoption {
			firstAdoption = m
		}
	}
	for _, s := range r.Timeline[:firstAdoption] {
		if s.UserAdoption > p.FirstMoverShare+1e-9 {
			t.Fatalf("month %d adoption %.4f exceeded first-mover ceiling before any aggregator adopted",
				s.Month, s.UserAdoption)
		}
	}
}

func TestPhotosMonotone(t *testing.T) {
	r, err := Run(DefaultParams(), DefaultAggregators())
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, s := range r.Timeline {
		if s.Photos < prev {
			t.Fatalf("photo base shrank at month %d", s.Month)
		}
		prev = s.Photos
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(DefaultParams(), DefaultAggregators())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(DefaultParams(), DefaultAggregators())
	if err != nil {
		t.Fatal(err)
	}
	if a.Final != b.Final || a.TriggerMonth != b.TriggerMonth {
		t.Error("simulation not deterministic")
	}
}

func TestPayoffStructure(t *testing.T) {
	p := DefaultParams()
	privacy := Aggregator{Name: "p", Share: 0.2, Brand: 0.9}
	engagement := Aggregator{Name: "e", Share: 0.2, Brand: 0.1}
	// With zero adoption, nobody has a positive payoff: unilateral
	// adoption has "no immediate payoff" (§4.1).
	if Payoff(p, privacy, 0, 0) > 0 {
		t.Error("privacy aggregator adopts with zero users — contradicts §4.1")
	}
	if Payoff(p, engagement, 0, 0) > 0 {
		t.Error("engagement aggregator adopts with zero users")
	}
	// At high adoption + full trigger, everyone's payoff is positive.
	if Payoff(p, engagement, 0.5, p.TriggerPhotos) <= 0 {
		t.Error("liability at full trigger fails to flip engagement-max")
	}
	// Privacy brands flip earlier (at lower adoption).
	uStar := func(a Aggregator) float64 {
		for u := 0.0; u <= 1.0; u += 0.001 {
			if Payoff(p, a, u, 0) > 0 {
				return u
			}
		}
		return math.Inf(1)
	}
	if uStar(privacy) >= uStar(engagement) {
		t.Error("privacy brand does not flip before engagement brand")
	}
}

func TestSweepShape(t *testing.T) {
	pts, err := Sweep(DefaultParams(), []float64{0, 0.05, 0.15}, []float64{0.5, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("sweep size %d", len(pts))
	}
	// Zero first movers never transforms.
	for _, pt := range pts {
		if pt.FirstMoverShare == 0 && pt.FirstIncumbentMonth != -1 {
			t.Errorf("transformation with zero first movers: %+v", pt)
		}
	}
	// More first movers ⇒ no later first-incumbent adoption (holding
	// liability fixed).
	byLiability := map[float64]map[float64]int{}
	for _, pt := range pts {
		if byLiability[pt.LiabilityWeight] == nil {
			byLiability[pt.LiabilityWeight] = map[float64]int{}
		}
		m := pt.FirstIncumbentMonth
		if m == -1 {
			m = 1 << 30
		}
		byLiability[pt.LiabilityWeight][pt.FirstMoverShare] = m
	}
	for lw, row := range byLiability {
		if row[0.15] > row[0.05] {
			t.Errorf("liability %g: 15%% first movers adopted later than 5%%", lw)
		}
	}
}
