// Package tet simulates Technology Ecosystem Transformation — the
// paper's core strategic claim, made executable.
//
// The paper argues (§1, §4.1, §6) that IRS can bootstrap without
// incumbent cooperation: pro-privacy browser vendors deploy extensions
// and ledgers ("first movers"); users of those browsers register photos;
// and once adoption and the registered-photo base are large enough, the
// incumbents' own incentives flip — "for those companies branding
// themselves as 'pro-privacy' this would be seen as a competitive
// advantage ... and for all companies not supporting IRS, their lack of
// support could become a legal liability". The paper pins the scale at
// which "the ecosystem incentives will start to kick in" to roughly the
// bootstrap design's capacity limit of 100 billion photos (§4.4).
//
// The model is a deterministic monthly simulation:
//
//   - User adoption u(t) follows logistic growth toward a ceiling set by
//     the first-mover browsers' market share, lifted as aggregators
//     adopt (users gain utility when the platforms they use respect
//     revocation — the TET feedback loop).
//   - The registered-photo base P(t) grows with adoption.
//   - Each aggregator adopts when its payoff turns positive:
//     brand gain (∝ its privacy affinity × u) plus legal liability
//     (∝ u × min(1, P/Trigger)) minus engagement cost (∝ 1 − affinity).
//
// The two TET criteria become measurable: criterion (i) is whether the
// first-mover share sustains any bootstrap at all; criterion (ii) is
// whether and when incumbent payoffs cross zero. E8 sweeps both knobs.
package tet

import (
	"errors"
	"fmt"
	"math"
)

// Aggregator is one incumbent content aggregator.
type Aggregator struct {
	// Name identifies the aggregator in reports.
	Name string
	// Share is its user market share in [0, 1].
	Share float64
	// Brand is its privacy-brand affinity in [0, 1]: 1 behaves like a
	// privacy-first company, 0 like a pure engagement maximizer.
	Brand float64
}

// Params are the simulation knobs. DefaultParams documents the baseline
// narrative calibration.
type Params struct {
	// FirstMoverShare is the user share of browsers that ship IRS in the
	// bootstrap phase — TET criterion (i).
	FirstMoverShare float64
	// OrganicRate is the monthly logistic growth rate of user adoption
	// within the reachable ceiling.
	OrganicRate float64
	// SeedAdoption is the initial adopter fraction (of FirstMoverShare).
	SeedAdoption float64
	// PhotoRate is registered photos added per month at full adoption,
	// in billions.
	PhotoRate float64
	// TriggerPhotos is the registered-photo base, in billions, at which
	// legal liability fully materializes (the paper's ~100 B bootstrap
	// capacity).
	TriggerPhotos float64
	// BrandGain scales the competitive-advantage payoff term.
	BrandGain float64
	// LiabilityWeight scales the legal-liability payoff term — TET
	// criterion (ii)'s main knob.
	LiabilityWeight float64
	// EngagementCost is the payoff penalty for engagement-driven
	// aggregators.
	EngagementCost float64
	// Spillover is how much of an adopted aggregator's share lifts the
	// user-adoption ceiling.
	Spillover float64
	// Months bounds the simulation horizon.
	Months int
}

// DefaultParams returns the baseline calibration: Firefox-scale first
// movers (~8% share), a 100 B-photo liability trigger, and a 15-year
// horizon.
func DefaultParams() Params {
	return Params{
		FirstMoverShare: 0.08,
		OrganicRate:     0.25,
		SeedAdoption:    0.02,
		PhotoRate:       4.0, // ~4 B photos/month at full adoption
		TriggerPhotos:   100,
		BrandGain:       1.2,
		LiabilityWeight: 2.0,
		EngagementCost:  0.35,
		Spillover:       0.9,
		Months:          180,
	}
}

// DefaultAggregators returns the baseline incumbent population: one
// privacy-branded player, two mainstream, one engagement-maximizing.
func DefaultAggregators() []Aggregator {
	return []Aggregator{
		{Name: "privacy-first", Share: 0.10, Brand: 0.9},
		{Name: "mainstream-a", Share: 0.30, Brand: 0.5},
		{Name: "mainstream-b", Share: 0.25, Brand: 0.4},
		{Name: "engagement-max", Share: 0.35, Brand: 0.1},
	}
}

// Step is one month's state.
type Step struct {
	Month int
	// UserAdoption is the fraction of all users running IRS-enabled
	// browsers.
	UserAdoption float64
	// Photos is the registered-photo base in billions.
	Photos float64
	// AdoptedShare is the aggregator market share supporting IRS.
	AdoptedShare float64
}

// Result is a completed simulation.
type Result struct {
	Timeline []Step
	// AdoptionMonth maps aggregator name to the month its payoff crossed
	// zero; absent means never within the horizon.
	AdoptionMonth map[string]int
	// TriggerMonth is when the photo base crossed TriggerPhotos (-1 if
	// never).
	TriggerMonth int
	// Final is the last step.
	Final Step
}

// Payoff computes an aggregator's adoption payoff under current
// conditions; adoption occurs when it turns positive.
func Payoff(p Params, a Aggregator, userAdoption, photosBillions float64) float64 {
	liability := p.LiabilityWeight * userAdoption * math.Min(1, photosBillions/p.TriggerPhotos)
	brand := p.BrandGain * a.Brand * userAdoption
	cost := p.EngagementCost * (1 - a.Brand)
	return brand + liability - cost
}

// Run executes the simulation.
func Run(p Params, aggs []Aggregator) (*Result, error) {
	if p.Months <= 0 {
		return nil, errors.New("tet: Months must be positive")
	}
	if p.FirstMoverShare < 0 || p.FirstMoverShare > 1 {
		return nil, fmt.Errorf("tet: FirstMoverShare %g out of [0,1]", p.FirstMoverShare)
	}
	adopted := make([]bool, len(aggs))
	res := &Result{
		AdoptionMonth: make(map[string]int),
		TriggerMonth:  -1,
	}
	u := p.FirstMoverShare * p.SeedAdoption
	photos := 0.0
	for m := 0; m < p.Months; m++ {
		// Ceiling: first movers plus spillover from adopted aggregators.
		ceiling := p.FirstMoverShare
		adoptedShare := 0.0
		for i, a := range aggs {
			if adopted[i] {
				ceiling += a.Share * p.Spillover
				adoptedShare += a.Share
			}
		}
		if ceiling > 1 {
			ceiling = 1
		}
		// Logistic growth within the ceiling.
		if ceiling > 0 {
			u += p.OrganicRate * u * (1 - u/ceiling)
		}
		if u > ceiling {
			u = ceiling
		}
		photos += u * p.PhotoRate
		if res.TriggerMonth < 0 && photos >= p.TriggerPhotos {
			res.TriggerMonth = m
		}
		// Adoption decisions (irreversible; supporting IRS then dropping
		// it would be a reputational disaster).
		for i, a := range aggs {
			if !adopted[i] && Payoff(p, a, u, photos) > 0 {
				adopted[i] = true
				res.AdoptionMonth[a.Name] = m
			}
		}
		res.Timeline = append(res.Timeline, Step{
			Month:        m,
			UserAdoption: u,
			Photos:       photos,
			AdoptedShare: adoptedShare,
		})
	}
	res.Final = res.Timeline[len(res.Timeline)-1]
	return res, nil
}

// SweepPoint is one cell of the E8 sweep.
type SweepPoint struct {
	FirstMoverShare float64
	LiabilityWeight float64
	// FirstIncumbentMonth is when the first aggregator adopted (-1 if
	// never).
	FirstIncumbentMonth int
	// FullAdoptionMonth is when every aggregator had adopted (-1 if
	// never).
	FullAdoptionMonth int
	// FinalUserAdoption is u at the horizon.
	FinalUserAdoption float64
	// FinalPhotos is the photo base at the horizon (billions).
	FinalPhotos float64
}

// Sweep runs the grid of first-mover shares × liability weights over the
// default aggregator population — the E8 experiment body.
func Sweep(base Params, firstMovers, liabilities []float64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, fm := range firstMovers {
		for _, lw := range liabilities {
			p := base
			p.FirstMoverShare = fm
			p.LiabilityWeight = lw
			aggs := DefaultAggregators()
			r, err := Run(p, aggs)
			if err != nil {
				return nil, err
			}
			pt := SweepPoint{
				FirstMoverShare:     fm,
				LiabilityWeight:     lw,
				FirstIncumbentMonth: -1,
				FullAdoptionMonth:   -1,
				FinalUserAdoption:   r.Final.UserAdoption,
				FinalPhotos:         r.Final.Photos,
			}
			if len(r.AdoptionMonth) > 0 {
				first := math.MaxInt
				last := -1
				for _, m := range r.AdoptionMonth {
					if m < first {
						first = m
					}
					if m > last {
						last = m
					}
				}
				pt.FirstIncumbentMonth = first
				if len(r.AdoptionMonth) == len(aggs) {
					pt.FullAdoptionMonth = last
				}
			}
			out = append(out, pt)
		}
	}
	return out, nil
}
