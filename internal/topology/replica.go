package topology

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/obs"
)

// The record plane: the origin serves every write and appends the
// resulting record to an ordered replication log; replicas tail the log
// with RestoreRecords (the bulk-ingest path that skips re-verifying
// owner signatures the origin already checked) and serve StatusBatch
// reads. Signed checkpoints — the origin's canonical StateHash at a log
// position, under a dedicated replication keypair — are the anti-entropy
// gate: a replica is only Ready while its own StateHash matches the
// last verified checkpoint, and a mismatch forces a full resync from
// the log head.

// Entry is one replicated mutation: the full record as of log position
// Seq. Replaying entries in order converges on the origin's state
// because each entry carries the complete newest version.
type Entry struct {
	Seq uint64
	Rec ledger.Record
}

// Checkpoint is the origin's signed state attestation: at log position
// Seq the canonical StateHash was State. Sig covers both under the
// origin's replication key.
type Checkpoint struct {
	Seq   uint64
	State [32]byte
	Sig   []byte
}

const checkpointMagic = "IRSCKPT1"

func checkpointMessage(seq uint64, state [32]byte) []byte {
	msg := make([]byte, 0, len(checkpointMagic)+8+32)
	msg = append(msg, checkpointMagic...)
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], seq)
	msg = append(msg, s[:]...)
	return append(msg, state[:]...)
}

// Verify checks the checkpoint signature against the origin's
// replication public key.
func (cp *Checkpoint) Verify(key ed25519.PublicKey) bool {
	return ed25519.Verify(key, checkpointMessage(cp.Seq, cp.State), cp.Sig)
}

// Origin wraps the authoritative ledger with the replication log. All
// writes in a topology go through Origin so every accepted mutation is
// logged; reads can go anywhere (the point of the replicas).
type Origin struct {
	L *ledger.Ledger

	pub  ed25519.PublicKey
	priv ed25519.PrivateKey

	// mu orders ledger mutation + log append as one atomic step, and
	// excludes writes while a checkpoint hashes state — the invariant
	// that makes "StateHash at log position Seq" well defined.
	mu      sync.Mutex
	entries []Entry
	m       *replicaMetrics
}

// NewOrigin wraps a ledger, generating the replication keypair
// checkpoints are signed with. reg may be nil.
func NewOrigin(l *ledger.Ledger, reg *obs.Registry) (*Origin, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("topology: replication keygen: %w", err)
	}
	return &Origin{L: l, pub: pub, priv: priv, m: newReplicaMetrics(reg, TierOrigin)}, nil
}

// ReplicationKey returns the public key that verifies checkpoints.
func (o *Origin) ReplicationKey() ed25519.PublicKey { return o.pub }

// appendLocked logs the current version of a record. Caller holds o.mu.
func (o *Origin) appendLocked(id ids.PhotoID) error {
	rec, err := o.L.Record(id)
	if err != nil {
		return err
	}
	o.entries = append(o.entries, Entry{Seq: uint64(len(o.entries)) + 1, Rec: rec})
	return nil
}

// Claim registers a photo at the origin and logs the accepted record.
func (o *Origin) Claim(contentHash [32]byte, pub ed25519.PublicKey, hashSig []byte, revokedAtBirth bool) (ledger.Receipt, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	r, err := o.L.Claim(contentHash, pub, hashSig, revokedAtBirth)
	if err != nil {
		return r, err
	}
	return r, o.appendLocked(r.ID)
}

// Apply performs an owner operation at the origin and logs the result.
func (o *Origin) Apply(id ids.PhotoID, op ledger.Op, sig []byte) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := o.L.Apply(id, op, sig); err != nil {
		return err
	}
	return o.appendLocked(id)
}

// PermanentRevoke applies the appeals outcome at the origin and logs it.
func (o *Origin) PermanentRevoke(id ids.PhotoID) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := o.L.PermanentRevoke(id); err != nil {
		return err
	}
	return o.appendLocked(id)
}

// Restore bulk-loads pre-formed records (the bench population path) and
// logs them for replication.
func (o *Origin) Restore(recs []ledger.Record) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := o.L.RestoreRecords(recs); err != nil {
		return err
	}
	for i := range recs {
		if err := o.appendLocked(recs[i].ID); err != nil {
			return err
		}
	}
	return nil
}

// Seq returns the current log position.
func (o *Origin) Seq() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return uint64(len(o.entries))
}

// EntriesSince returns a copy of the log entries with Seq > after.
func (o *Origin) EntriesSince(after uint64) []Entry {
	o.mu.Lock()
	defer o.mu.Unlock()
	if after >= uint64(len(o.entries)) {
		return nil
	}
	out := make([]Entry, uint64(len(o.entries))-after)
	copy(out, o.entries[after:])
	return out
}

// Checkpoint cuts a signed state attestation at the current log
// position. Writes are excluded while the state hashes, so the
// (Seq, StateHash) pair is exact.
func (o *Origin) Checkpoint() (Checkpoint, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	state, err := o.L.StateHash()
	if err != nil {
		return Checkpoint{}, err
	}
	seq := uint64(len(o.entries))
	cp := Checkpoint{Seq: seq, State: state}
	cp.Sig = ed25519.Sign(o.priv, checkpointMessage(seq, state))
	o.m.checkpoints.Inc()
	return cp, nil
}

// Replica errors.
var (
	ErrBadCheckpoint = errors.New("topology: checkpoint signature invalid")
	ErrDiverged      = errors.New("topology: replica diverged from origin even after full resync")
)

// Replica is a regional read copy of the origin ledger: an in-memory
// ledger under the same ID, fed from the replication log, serving
// StatusBatch. It only reports Ready after a verified checkpoint's
// StateHash matched its own — the gate the harness (and any honest
// deployment) applies before routing reads to it.
type Replica struct {
	L *ledger.Ledger

	verifyKey ed25519.PublicKey
	mu        sync.Mutex
	applied   uint64
	verified  bool
	m         *replicaMetrics
	newLedger func() (*ledger.Ledger, error)
}

// NewReplica builds an empty replica of ledger id, trusting checkpoints
// under verifyKey. reg may be nil.
func NewReplica(id ids.LedgerID, verifyKey ed25519.PublicKey, reg *obs.Registry) (*Replica, error) {
	mk := func() (*ledger.Ledger, error) { return ledger.New(ledger.Config{ID: id}) }
	l, err := mk()
	if err != nil {
		return nil, err
	}
	return &Replica{L: l, verifyKey: verifyKey, m: newReplicaMetrics(reg, TierRegional), newLedger: mk}, nil
}

// AppliedSeq returns the log position the replica has ingested through.
func (r *Replica) AppliedSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// Ready reports whether the last CatchUp ended with the replica's
// StateHash matching a verified origin checkpoint.
func (r *Replica) Ready() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.verified
}

// ReplicaSource feeds CatchUp; satisfied by *Origin (and by anything
// relaying its log).
type ReplicaSource interface {
	EntriesSince(after uint64) []Entry
}

// CatchUp tails the log through cp.Seq and gates on the checkpoint:
// the signature must verify, and after ingest the replica's own
// StateHash must equal cp.State. A hash mismatch triggers one full
// resync from the log head (anti-entropy); if the hashes still differ
// the log itself is inconsistent with the checkpoint and ErrDiverged
// is returned with the replica marked not Ready.
func (r *Replica) CatchUp(src ReplicaSource, cp Checkpoint) error {
	if !cp.Verify(r.verifyKey) {
		return ErrBadCheckpoint
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.verified = false
	if err := r.ingestLocked(src, cp.Seq); err != nil {
		return err
	}
	own, err := r.L.StateHash()
	if err != nil {
		return err
	}
	if own == cp.State {
		r.verified = true
		r.m.catchups.Inc()
		return nil
	}
	// Anti-entropy: drop local state, replay the whole log.
	r.m.resyncs.Inc()
	fresh, err := r.newLedger()
	if err != nil {
		return err
	}
	if cerr := r.L.Close(); cerr != nil {
		_ = cerr // replica state is memory-only; nothing durable at risk
	}
	r.L = fresh
	r.applied = 0
	if err := r.ingestLocked(src, cp.Seq); err != nil {
		return err
	}
	own, err = r.L.StateHash()
	if err != nil {
		return err
	}
	if own != cp.State {
		return ErrDiverged
	}
	r.verified = true
	return nil
}

// ingestLocked applies log entries with applied < Seq ≤ through. A
// claim-then-revoke pair for one ID yields two log entries; since each
// entry carries the full newest version, the batch is deduped to the
// last entry per ID (RestoreRecords expects unique identifiers).
func (r *Replica) ingestLocked(src ReplicaSource, through uint64) error {
	if r.applied >= through {
		return nil
	}
	entries := src.EntriesSince(r.applied)
	byID := make(map[ids.PhotoID]ledger.Record)
	order := make([]ids.PhotoID, 0, len(entries))
	applied := r.applied
	for _, e := range entries {
		if e.Seq <= r.applied || e.Seq > through {
			continue
		}
		if _, ok := byID[e.Rec.ID]; !ok {
			order = append(order, e.Rec.ID)
		}
		byID[e.Rec.ID] = e.Rec
		applied = e.Seq
	}
	if len(order) == 0 {
		return nil
	}
	recs := make([]ledger.Record, 0, len(order))
	for _, id := range order {
		recs = append(recs, byID[id])
	}
	if err := r.L.RestoreRecords(recs); err != nil {
		return err
	}
	r.applied = applied
	r.m.entries.Add(uint64(len(recs)))
	return nil
}
