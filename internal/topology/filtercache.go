package topology

import (
	"sync"

	"irs/internal/bloom"
	"irs/internal/ledger"
	"irs/internal/obs"
)

// Syncer is one round of the versioned filter sync protocol: present
// the held epoch and filter hash, receive an ApplyUpdate payload (or
// nothing when current). Satisfied by *ledger.Ledger, wire.Service
// implementations, and *FilterCache itself — which is what lets the
// tiers chain: edges sync from a regional FilterCache exactly the way
// the regional syncs from the origin ledger.
type Syncer interface {
	FilterSync(from uint64, baseHash []byte) (payload []byte, latest uint64, err error)
}

var _ Syncer = (*FilterCache)(nil)

// FilterCache is a tier's held window of filter epochs. The serve side
// (FilterSync) answers downstream tiers with size-gated v2 deltas
// between retained epochs or full snapshots; the client side (Pull)
// advances the cache from an upstream Syncer. A bounded history keeps
// delta service possible for downstreams one-to-few intervals behind
// without holding every epoch forever.
type FilterCache struct {
	mu      sync.RWMutex
	filters map[uint64]*bloom.Filter
	hashes  map[uint64][32]byte
	order   []uint64
	history int
	m       *filterMetrics
}

// DefaultFilterHistory retains enough epochs that a downstream lagging
// several sync intervals still gets deltas.
const DefaultFilterHistory = 8

// NewFilterCache builds an empty cache for a tier. history bounds the
// retained epochs (<=0 means DefaultFilterHistory); reg may be nil.
func NewFilterCache(tier Tier, history int, reg *obs.Registry) *FilterCache {
	if history <= 0 {
		history = DefaultFilterHistory
	}
	return &FilterCache{
		filters: make(map[uint64]*bloom.Filter),
		hashes:  make(map[uint64][32]byte),
		history: history,
		m:       newFilterMetrics(reg, tier),
	}
}

// Install records a filter under an epoch number. Re-installing a held
// epoch replaces its filter in place — that is what lets the snapshot
// fallback repair a cache whose bits drifted from the upstream's at the
// same epoch number. Epochs must otherwise be installed in increasing
// order; the oldest retained epoch is evicted past the history bound.
func (fc *FilterCache) Install(epoch uint64, f *bloom.Filter) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if _, ok := fc.filters[epoch]; ok {
		fc.filters[epoch] = f
		fc.hashes[epoch] = f.Hash()
		return
	}
	fc.filters[epoch] = f
	fc.hashes[epoch] = f.Hash()
	fc.order = append(fc.order, epoch)
	for len(fc.order) > fc.history {
		delete(fc.filters, fc.order[0])
		delete(fc.hashes, fc.order[0])
		fc.order = fc.order[1:]
	}
}

// Latest returns the newest held epoch and filter (shared, do not
// mutate), or ok=false before the first Install.
func (fc *FilterCache) Latest() (epoch uint64, f *bloom.Filter, ok bool) {
	fc.mu.RLock()
	defer fc.mu.RUnlock()
	if len(fc.order) == 0 {
		return 0, nil, false
	}
	epoch = fc.order[len(fc.order)-1]
	return epoch, fc.filters[epoch], true
}

// LatestHash returns the newest held epoch and its filter hash.
func (fc *FilterCache) LatestHash() (epoch uint64, hash [32]byte, ok bool) {
	fc.mu.RLock()
	defer fc.mu.RUnlock()
	if len(fc.order) == 0 {
		return 0, hash, false
	}
	epoch = fc.order[len(fc.order)-1]
	return epoch, fc.hashes[epoch], true
}

// FilterSync implements Syncer — the serve side, with the same
// semantics as ledger.FilterSync: empty payload when the caller is
// current, otherwise the cheaper of a base-validated delta and a full
// snapshot, resolving any base mismatch with a snapshot rather than an
// error. ledger.ErrNoSnapshot before the first Install.
func (fc *FilterCache) FilterSync(from uint64, baseHash []byte) ([]byte, uint64, error) {
	fc.mu.RLock()
	defer fc.mu.RUnlock()
	if len(fc.order) == 0 {
		return nil, 0, ledger.ErrNoSnapshot
	}
	latest := fc.order[len(fc.order)-1]
	base := fc.filters[from]
	if base != nil {
		want := fc.hashes[from]
		if len(baseHash) != 32 || string(baseHash) != string(want[:]) {
			base = nil
		}
	}
	if base != nil && from == latest {
		fc.m.syncUpToDate.Inc()
		return nil, latest, nil
	}
	payload, err := bloom.Update(base, fc.filters[latest])
	if err != nil {
		return nil, latest, err
	}
	if isSnapshotPayload(payload) {
		fc.m.syncSnapshot.Inc()
	} else {
		fc.m.syncDelta.Inc()
	}
	fc.m.syncBytes.Add(uint64(len(payload)))
	return payload, latest, nil
}

// isSnapshotPayload reports whether an Update payload is a full
// snapshot frame (vs a delta).
func isSnapshotPayload(p []byte) bool {
	return len(p) >= 6 && string(p[:6]) == "IRSBF1"
}

// Pull advances the cache one sync round against an upstream tier.
// Returns whether a new epoch was installed and the payload bytes
// transferred. A payload the held base cannot absorb (upstream restart,
// local corruption) is retried as an explicit cold sync — the
// full-snapshot fallback — so Pull converges whenever the upstream
// serves at all.
func (fc *FilterCache) Pull(src Syncer) (changed bool, bytes int, err error) {
	held, f, _ := fc.Latest()
	var baseHash []byte
	if f != nil {
		h := f.Hash()
		baseHash = h[:]
	}
	payload, latest, err := src.FilterSync(held, baseHash)
	if err != nil {
		return false, 0, err
	}
	if len(payload) == 0 {
		fc.m.pullCurrent.Inc()
		return false, 0, nil
	}
	bytes = len(payload)
	next, aerr := bloom.ApplyUpdate(f, payload)
	if aerr != nil {
		// Defense in depth: ask for a standalone snapshot.
		payload, latest, err = src.FilterSync(0, nil)
		if err != nil {
			return false, bytes, err
		}
		bytes += len(payload)
		next, err = bloom.ApplyUpdate(nil, payload)
		if err != nil {
			return false, bytes, err
		}
	}
	fc.Install(latest, next)
	fc.m.pullChanged.Inc()
	fc.m.pullBytes.Add(uint64(bytes))
	return true, bytes, nil
}
