package topology

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"testing"

	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/obs"
	"irs/internal/tsa"
)

func newOriginLedger(t testing.TB, id ids.LedgerID) *ledger.Ledger {
	t.Helper()
	l, err := ledger.New(ledger.Config{ID: id})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// fabRecords builds fully-populated records for the Restore path
// (StateHash canonicalizes every field, so each needs a timestamp
// token too); revoked selects which are revoked at birth.
func fabRecords(t testing.TB, lid ids.LedgerID, n int, revoked func(i int) bool) []ledger.Record {
	t.Helper()
	recs := make([]ledger.Record, n)
	for i := range recs {
		id, err := ids.New(lid)
		if err != nil {
			t.Fatal(err)
		}
		r := &recs[i]
		r.ID = id
		r.PubKey = make([]byte, ed25519.PublicKeySize)
		rand.Read(r.PubKey)
		r.HashSig = make([]byte, ed25519.SignatureSize)
		rand.Read(r.HashSig)
		rand.Read(r.ContentHash[:])
		sig := make([]byte, ed25519.SignatureSize)
		rand.Read(sig)
		r.Timestamp = &tsa.Token{Serial: uint64(i), Time: time.Unix(1700000000+int64(i), 0).UTC(), Sig: sig}
		rand.Read(r.Timestamp.Digest[:])
		r.State = ledger.StateActive
		if revoked(i) {
			r.State = ledger.StateRevoked
		}
	}
	return recs
}

// TestFilterPropagation drives the filter plane through all three
// tiers: origin snapshot → regional pull → edge pull, then a second
// epoch whose updates flow as deltas, converging on identical bits at
// every tier.
func TestFilterPropagation(t *testing.T) {
	reg := obs.NewRegistry()
	l := newOriginLedger(t, 3)
	recs := fabRecords(t, 3, 60, func(i int) bool { return i < 20 })
	if err := l.RestoreRecords(recs); err != nil {
		t.Fatal(err)
	}
	if _, err := l.BuildSnapshot(); err != nil {
		t.Fatal(err)
	}
	_, origin1, err := l.FilterSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	regional := NewFilterCache(TierRegional, 0, reg)
	edge := NewFilterCache(TierEdge, 0, reg)

	// Cold sync down the chain.
	if changed, _, err := regional.Pull(l); err != nil || !changed {
		t.Fatalf("regional cold pull: changed=%v err=%v", changed, err)
	}
	if changed, _, err := edge.Pull(regional); err != nil || !changed {
		t.Fatalf("edge cold pull: changed=%v err=%v", changed, err)
	}
	if _, f, _ := edge.Latest(); f.Hash() != origin1.Hash() {
		t.Fatal("edge filter differs from origin after cold sync")
	}

	// Steady state: pulls are no-ops.
	if changed, n, err := edge.Pull(regional); err != nil || changed || n != 0 {
		t.Fatalf("current edge pull: changed=%v bytes=%d err=%v", changed, n, err)
	}

	// Epoch 2: a few more revocations; the update should travel as a
	// small delta, not a snapshot.
	more := fabRecords(t, 3, 5, func(int) bool { return true })
	if err := l.RestoreRecords(more); err != nil {
		t.Fatal(err)
	}
	if _, err := l.BuildSnapshot(); err != nil {
		t.Fatal(err)
	}
	_, origin2, err := l.FilterSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	changed, n, err := regional.Pull(l)
	if err != nil || !changed {
		t.Fatalf("regional delta pull: changed=%v err=%v", changed, err)
	}
	if full := len(origin2.Marshal()); n >= full {
		t.Errorf("incremental pull moved %d bytes, snapshot is %d", n, full)
	}
	if changed, _, err := edge.Pull(regional); err != nil || !changed {
		t.Fatalf("edge delta pull: changed=%v err=%v", changed, err)
	}
	epoch, f, _ := edge.Latest()
	if epoch != 2 {
		t.Errorf("edge epoch %d, want 2", epoch)
	}
	if f.Hash() != origin2.Hash() {
		t.Fatal("edge filter diverged after delta sync")
	}
	for _, r := range more {
		if !f.Test(ledger.FilterKey(r.ID)) {
			t.Fatal("edge filter missing a propagated revocation")
		}
	}
	// The regional tier served the edge one delta (cold snapshot + one
	// delta + one up-to-date round).
	if got, ok := obs.Value(reg.Snapshot(), "irs_topology_filter_syncs_total",
		obs.L("tier", "regional"), obs.L("kind", "delta")); !ok || got != 1 {
		t.Errorf("regional delta syncs = %v (ok=%v), want 1", got, ok)
	}
}

// TestFilterPullErrors: an empty upstream propagates ErrNoSnapshot.
func TestFilterPullErrors(t *testing.T) {
	l := newOriginLedger(t, 3)
	fc := NewFilterCache(TierRegional, 0, nil)
	if _, _, err := fc.Pull(l); err != ledger.ErrNoSnapshot {
		t.Fatalf("got %v, want ErrNoSnapshot", err)
	}
	// And an empty FilterCache serving downstream says the same.
	edge := NewFilterCache(TierEdge, 0, nil)
	if _, _, err := edge.Pull(fc); err != ledger.ErrNoSnapshot {
		t.Fatalf("got %v, want ErrNoSnapshot", err)
	}
}

// TestFilterBaseMismatchFallback: a downstream holding the right epoch
// number but the wrong bits (upstream restart) must converge via the
// snapshot fallback instead of applying a corrupting delta.
func TestFilterBaseMismatchFallback(t *testing.T) {
	l := newOriginLedger(t, 3)
	if err := l.RestoreRecords(fabRecords(t, 3, 30, func(i int) bool { return i%2 == 0 })); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := l.BuildSnapshot(); err != nil {
			t.Fatal(err)
		}
	}
	regional := NewFilterCache(TierRegional, 0, nil)
	if _, _, err := regional.Pull(l); err != nil {
		t.Fatal(err)
	}

	// Edge that thinks it holds the regional's latest epoch, but with
	// entirely different bits.
	epoch, goodFilter, _ := regional.Latest()
	bogus := goodFilter.Clone()
	bogus.Reset()
	bogus.Add(12345)
	edge := NewFilterCache(TierEdge, 0, nil)
	edge.Install(epoch, bogus)

	changed, _, err := edge.Pull(regional)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("mismatched edge reported itself current")
	}
	if _, f, _ := edge.Latest(); f.Hash() != goodFilter.Hash() {
		t.Fatal("edge did not converge on the upstream filter")
	}
}

// TestReplicaCatchUp: log shipping end to end — claims and revocations
// made at the origin appear in replica StatusBatch reads once a signed
// checkpoint has gated the catch-up.
func TestReplicaCatchUp(t *testing.T) {
	reg := obs.NewRegistry()
	o, err := NewOrigin(newOriginLedger(t, 4), reg)
	if err != nil {
		t.Fatal(err)
	}
	// A real claim + revoke through the Origin write surface, so every
	// write path is exercised (and logged).
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	content := sha256.Sum256([]byte("replicated photo"))
	receipt, err := o.Claim(content, pub, ed25519.Sign(priv, ledger.ClaimMsg(content)), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Apply(receipt.ID, ledger.OpRevoke, ed25519.Sign(priv, ledger.OpMsg(receipt.ID, ledger.OpRevoke, 1))); err != nil {
		t.Fatal(err)
	}
	// Plus a bulk population through Restore.
	bulk := fabRecords(t, 4, 50, func(i int) bool { return i < 10 })
	if err := o.Restore(bulk); err != nil {
		t.Fatal(err)
	}

	r, err := NewReplica(4, o.ReplicationKey(), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.L.Close()
	if r.Ready() {
		t.Fatal("replica ready before any catch-up")
	}
	cp, err := o.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CatchUp(o, cp); err != nil {
		t.Fatal(err)
	}
	if !r.Ready() {
		t.Fatal("replica not ready after verified catch-up")
	}
	if r.AppliedSeq() != cp.Seq {
		t.Fatalf("applied %d, want %d", r.AppliedSeq(), cp.Seq)
	}
	// Replica state is byte-equivalent to the origin.
	oh, err := o.L.StateHash()
	if err != nil {
		t.Fatal(err)
	}
	rh, err := r.L.StateHash()
	if err != nil {
		t.Fatal(err)
	}
	if oh != rh {
		t.Fatal("replica StateHash differs from origin")
	}
	// Reads served by the replica see the revocation.
	proofs, err := r.L.StatusBatch([]ids.PhotoID{receipt.ID, bulk[0].ID, bulk[20].ID})
	if err != nil {
		t.Fatal(err)
	}
	if proofs[0].State != ledger.StateRevoked {
		t.Errorf("replicated claim state %v, want revoked", proofs[0].State)
	}
	if proofs[1].State != ledger.StateRevoked || proofs[2].State != ledger.StateActive {
		t.Error("bulk-replicated states wrong")
	}

	// Incremental round: more writes, new checkpoint, catch-up applies
	// only the tail.
	if err := o.Restore(fabRecords(t, 4, 5, func(int) bool { return true })); err != nil {
		t.Fatal(err)
	}
	cp2, err := o.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CatchUp(o, cp2); err != nil {
		t.Fatal(err)
	}
	if r.AppliedSeq() != cp2.Seq {
		t.Fatalf("applied %d, want %d", r.AppliedSeq(), cp2.Seq)
	}
	if !r.Ready() {
		t.Fatal("replica not ready after incremental catch-up")
	}
}

// TestReplicaRejectsTamperedCheckpoint: a forged or bit-flipped
// checkpoint must be rejected before any state is ingested.
func TestReplicaRejectsTamperedCheckpoint(t *testing.T) {
	o, err := NewOrigin(newOriginLedger(t, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Restore(fabRecords(t, 4, 5, func(int) bool { return false })); err != nil {
		t.Fatal(err)
	}
	r, err := NewReplica(4, o.ReplicationKey(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.L.Close()
	cp, err := o.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cp.State[0] ^= 0xff // claim a different state under the old signature
	if err := r.CatchUp(o, cp); err != ErrBadCheckpoint {
		t.Fatalf("got %v, want ErrBadCheckpoint", err)
	}
	if r.Ready() || r.AppliedSeq() != 0 {
		t.Fatal("tampered checkpoint advanced the replica")
	}
}

// TestReplicaResync: a replica whose local state has drifted (here:
// poisoned with a record the origin never logged) must detect the
// StateHash mismatch at the gate, resync from the log head, and
// converge.
func TestReplicaResync(t *testing.T) {
	reg := obs.NewRegistry()
	o, err := NewOrigin(newOriginLedger(t, 4), reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Restore(fabRecords(t, 4, 20, func(i int) bool { return i < 5 })); err != nil {
		t.Fatal(err)
	}
	r, err := NewReplica(4, o.ReplicationKey(), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { r.L.Close() }()
	// Poison the replica behind the protocol's back.
	if err := r.L.RestoreRecords(fabRecords(t, 4, 1, func(int) bool { return true })); err != nil {
		t.Fatal(err)
	}
	cp, err := o.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CatchUp(o, cp); err != nil {
		t.Fatalf("resync failed: %v", err)
	}
	if !r.Ready() {
		t.Fatal("replica not ready after resync")
	}
	oh, _ := o.L.StateHash()
	rh, err := r.L.StateHash()
	if err != nil {
		t.Fatal(err)
	}
	if oh != rh {
		t.Fatal("resync did not converge on origin state")
	}
	if got, ok := obs.Value(reg.Snapshot(), "irs_topology_replica_catchups_total",
		obs.L("tier", "regional"), obs.L("outcome", "resync")); !ok || got != 1 {
		t.Errorf("resyncs = %v (ok=%v), want 1", got, ok)
	}
}
