// Package topology implements the multi-tier deployment shape the
// paper's scale argument assumes: browsers → edge proxies → regional
// proxies → origin ledgers (§4.4's "trusted proxies" at internet
// scale, ROADMAP open item 1).
//
// Two distribution planes run through the tiers:
//
//   - Filter plane: the origin ledger publishes numbered revocation
//     filter snapshots; regionals sync from the origin and edges sync
//     from regionals via the versioned sync protocol (FilterCache,
//     bloom.Update payloads — v2 base-hash-validated deltas or full
//     snapshots, whichever is smaller, with snapshot fallback on any
//     base mismatch). Staleness grows one sync interval per hop; the
//     -topology harness measures that tradeoff curve.
//
//   - Record plane: the origin serves all writes and appends every
//     accepted mutation to a replication log; read replicas at the
//     regional tier catch up from the log and serve StatusBatch reads.
//     Periodic checkpoints — the origin's canonical StateHash signed by
//     its replication key — gate the replicas: a replica only reports
//     Ready while its own StateHash matches the last verified
//     checkpoint, and a mismatch triggers a full resync (anti-entropy).
//
// Per-tier metrics land in the shared obs registry under
// irs_topology_*.
package topology

import (
	"irs/internal/obs"
)

// Tier names a level of the proxy hierarchy.
type Tier int

// The three tiers of the deployment story.
const (
	TierOrigin Tier = iota
	TierRegional
	TierEdge
)

// String implements fmt.Stringer (and labels the per-tier metrics).
func (t Tier) String() string {
	switch t {
	case TierOrigin:
		return "origin"
	case TierRegional:
		return "regional"
	case TierEdge:
		return "edge"
	}
	return "unknown"
}

// filterMetrics is the per-tier instrumentation of one FilterCache.
type filterMetrics struct {
	syncUpToDate *obs.Counter // served: caller already current
	syncDelta    *obs.Counter // served: incremental payload
	syncSnapshot *obs.Counter // served: full snapshot payload
	syncBytes    *obs.Counter // served payload bytes
	pullChanged  *obs.Counter // pulled: new epoch installed
	pullCurrent  *obs.Counter // pulled: already current
	pullBytes    *obs.Counter // pulled payload bytes
}

func newFilterMetrics(reg *obs.Registry, tier Tier) *filterMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	l := obs.L("tier", tier.String())
	return &filterMetrics{
		syncUpToDate: reg.Counter("irs_topology_filter_syncs_total", l, obs.L("kind", "uptodate")),
		syncDelta:    reg.Counter("irs_topology_filter_syncs_total", l, obs.L("kind", "delta")),
		syncSnapshot: reg.Counter("irs_topology_filter_syncs_total", l, obs.L("kind", "snapshot")),
		syncBytes:    reg.Counter("irs_topology_filter_sync_bytes_total", l),
		pullChanged:  reg.Counter("irs_topology_filter_pulls_total", l, obs.L("kind", "changed")),
		pullCurrent:  reg.Counter("irs_topology_filter_pulls_total", l, obs.L("kind", "current")),
		pullBytes:    reg.Counter("irs_topology_filter_pull_bytes_total", l),
	}
}

// replicaMetrics instruments the record plane.
type replicaMetrics struct {
	entries     *obs.Counter // log entries applied
	catchups    *obs.Counter // successful verified catch-ups
	resyncs     *obs.Counter // anti-entropy full resyncs
	checkpoints *obs.Counter // checkpoints cut at the origin
}

func newReplicaMetrics(reg *obs.Registry, tier Tier) *replicaMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	l := obs.L("tier", tier.String())
	return &replicaMetrics{
		entries:     reg.Counter("irs_topology_replica_entries_total", l),
		catchups:    reg.Counter("irs_topology_replica_catchups_total", l, obs.L("outcome", "ok")),
		resyncs:     reg.Counter("irs_topology_replica_catchups_total", l, obs.L("outcome", "resync")),
		checkpoints: reg.Counter("irs_topology_checkpoints_total", l),
	}
}
