// Package tsa implements an RFC 3161-style timestamp authority.
//
// The paper's ledger records "an authenticated timestamp (as in [1])"
// with every claim, and the appeals process hinges on the original owner
// presenting "a signed timestamp of the original claim" (§3.2): whoever
// holds the earlier authenticated timestamp for (a perceptual variant
// of) a photo wins the dispute.
//
// A Token binds a message digest to a time with an Ed25519 signature over
// a canonical encoding. Unlike real RFC 3161 there is no ASN.1 — the
// encoding is a fixed-layout byte string — but the trust structure is the
// same: verifiers need only the authority's public key.
package tsa

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Token is a signed statement: "digest D existed at time T", with a
// serial number unique per authority.
type Token struct {
	Serial uint64
	Time   time.Time
	Digest [32]byte
	Sig    []byte // Ed25519 signature over canonical encoding
}

// canonical returns the signed byte layout: serial ∥ unixnano ∥ digest.
func (t *Token) canonical() []byte {
	buf := make([]byte, 8+8+32)
	binary.BigEndian.PutUint64(buf[0:], t.Serial)
	binary.BigEndian.PutUint64(buf[8:], uint64(t.Time.UnixNano()))
	copy(buf[16:], t.Digest[:])
	return buf
}

// Marshal encodes the token for wire transport.
func (t *Token) Marshal() []byte {
	c := t.canonical()
	out := make([]byte, 0, len(c)+len(t.Sig))
	out = append(out, c...)
	out = append(out, t.Sig...)
	return out
}

// Unmarshal decodes a token produced by Marshal.
func Unmarshal(b []byte) (*Token, error) {
	if len(b) != 48+ed25519.SignatureSize {
		return nil, fmt.Errorf("tsa: token length %d, want %d", len(b), 48+ed25519.SignatureSize)
	}
	t := &Token{
		Serial: binary.BigEndian.Uint64(b[0:]),
		Time:   time.Unix(0, int64(binary.BigEndian.Uint64(b[8:]))).UTC(),
	}
	copy(t.Digest[:], b[16:48])
	t.Sig = append([]byte(nil), b[48:]...)
	return t, nil
}

// Authority issues timestamp tokens. It is safe for concurrent use.
type Authority struct {
	priv   ed25519.PrivateKey
	pub    ed25519.PublicKey
	serial atomic.Uint64
	// now is the clock; replaceable for tests and simulation.
	now func() time.Time
}

// New creates an authority with a fresh Ed25519 keypair and the real
// clock.
func New() (*Authority, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("tsa: keygen: %w", err)
	}
	return &Authority{priv: priv, pub: pub, now: time.Now}, nil
}

// NewWithClock creates an authority using the supplied clock — the
// simulators drive this with virtual time.
func NewWithClock(now func() time.Time) (*Authority, error) {
	a, err := New()
	if err != nil {
		return nil, err
	}
	a.now = now
	return a, nil
}

// PublicKey returns the verification key.
func (a *Authority) PublicKey() ed25519.PublicKey { return a.pub }

// Stamp issues a token over the given digest.
func (a *Authority) Stamp(digest [32]byte) *Token {
	t := &Token{
		Serial: a.serial.Add(1),
		Time:   a.now().UTC(),
		Digest: digest,
	}
	t.Sig = ed25519.Sign(a.priv, t.canonical())
	return t
}

// StampMessage hashes msg with SHA-256 and stamps the digest.
func (a *Authority) StampMessage(msg []byte) *Token {
	return a.Stamp(sha256.Sum256(msg))
}

// Verification errors.
var (
	ErrBadSignature = errors.New("tsa: signature verification failed")
	ErrWrongDigest  = errors.New("tsa: token digest does not match message")
)

// Verify checks a token's signature against the authority public key.
func Verify(pub ed25519.PublicKey, t *Token) error {
	if !ed25519.Verify(pub, t.canonical(), t.Sig) {
		return ErrBadSignature
	}
	return nil
}

// VerifyMessage checks both the signature and that the token covers msg.
func VerifyMessage(pub ed25519.PublicKey, t *Token, msg []byte) error {
	if err := Verify(pub, t); err != nil {
		return err
	}
	if t.Digest != sha256.Sum256(msg) {
		return ErrWrongDigest
	}
	return nil
}

// Earlier reports whether token a precedes token b, the comparison the
// appeals process performs between the complainant's claim timestamp and
// the contested claim's. Serial numbers break exact time ties when both
// tokens come from the same authority.
func Earlier(a, b *Token) bool {
	if !a.Time.Equal(b.Time) {
		return a.Time.Before(b.Time)
	}
	return a.Serial < b.Serial
}
