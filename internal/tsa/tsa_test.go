package tsa

import (
	"crypto/sha256"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestStampVerify(t *testing.T) {
	a, err := New()
	if err != nil {
		t.Fatal(err)
	}
	tok := a.StampMessage([]byte("hello"))
	if err := VerifyMessage(a.PublicKey(), tok, []byte("hello")); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyRejectsWrongMessage(t *testing.T) {
	a, err := New()
	if err != nil {
		t.Fatal(err)
	}
	tok := a.StampMessage([]byte("hello"))
	if err := VerifyMessage(a.PublicKey(), tok, []byte("other")); err != ErrWrongDigest {
		t.Errorf("got %v, want ErrWrongDigest", err)
	}
}

func TestVerifyRejectsTamperedToken(t *testing.T) {
	a, err := New()
	if err != nil {
		t.Fatal(err)
	}
	tok := a.StampMessage([]byte("hello"))

	mutTime := *tok
	mutTime.Time = tok.Time.Add(time.Hour)
	if err := Verify(a.PublicKey(), &mutTime); err == nil {
		t.Error("backdated token verified")
	}

	mutDigest := *tok
	mutDigest.Digest[0] ^= 1
	if err := Verify(a.PublicKey(), &mutDigest); err == nil {
		t.Error("digest-swapped token verified")
	}

	mutSerial := *tok
	mutSerial.Serial++
	if err := Verify(a.PublicKey(), &mutSerial); err == nil {
		t.Error("serial-bumped token verified")
	}
}

func TestVerifyRejectsWrongAuthority(t *testing.T) {
	a, err := New()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New()
	if err != nil {
		t.Fatal(err)
	}
	tok := a.StampMessage([]byte("x"))
	if err := Verify(b.PublicKey(), tok); err == nil {
		t.Error("token verified under a different authority's key")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	a, err := New()
	if err != nil {
		t.Fatal(err)
	}
	tok := a.StampMessage([]byte("payload"))
	got, err := Unmarshal(tok.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Serial != tok.Serial || !got.Time.Equal(tok.Time) || got.Digest != tok.Digest {
		t.Error("round trip changed fields")
	}
	if err := Verify(a.PublicKey(), got); err != nil {
		t.Errorf("round-tripped token fails verification: %v", err)
	}
}

func TestUnmarshalRejectsBadLength(t *testing.T) {
	if _, err := Unmarshal([]byte("short")); err == nil {
		t.Error("short token accepted")
	}
}

func TestSerialsMonotonic(t *testing.T) {
	a, err := New()
	if err != nil {
		t.Fatal(err)
	}
	last := uint64(0)
	for i := 0; i < 100; i++ {
		tok := a.Stamp(sha256.Sum256([]byte{byte(i)}))
		if tok.Serial <= last {
			t.Fatalf("serial %d not greater than %d", tok.Serial, last)
		}
		last = tok.Serial
	}
}

func TestConcurrentStampsUnique(t *testing.T) {
	a, err := New()
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	serials := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			serials[i] = a.StampMessage([]byte{byte(i)}).Serial
		}(i)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for _, s := range serials {
		if seen[s] {
			t.Fatalf("duplicate serial %d", s)
		}
		seen[s] = true
	}
}

func TestEarlier(t *testing.T) {
	base := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	clock := base
	a, err := NewWithClock(func() time.Time { return clock })
	if err != nil {
		t.Fatal(err)
	}
	t1 := a.StampMessage([]byte("first"))
	clock = base.Add(time.Second)
	t2 := a.StampMessage([]byte("second"))
	if !Earlier(t1, t2) || Earlier(t2, t1) {
		t.Error("time ordering wrong")
	}
	// Same-instant: serial breaks the tie.
	t3 := a.StampMessage([]byte("third"))
	t4 := a.StampMessage([]byte("fourth"))
	if !Earlier(t3, t4) {
		t.Error("serial tie-break wrong")
	}
}

func TestClockInjection(t *testing.T) {
	want := time.Date(2030, 1, 2, 3, 4, 5, 0, time.UTC)
	a, err := NewWithClock(func() time.Time { return want })
	if err != nil {
		t.Fatal(err)
	}
	tok := a.StampMessage([]byte("x"))
	if !tok.Time.Equal(want) {
		t.Errorf("token time %v, want %v", tok.Time, want)
	}
}

func BenchmarkStamp(b *testing.B) {
	a, err := New()
	if err != nil {
		b.Fatal(err)
	}
	d := sha256.Sum256([]byte("bench"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Stamp(d)
	}
}

func BenchmarkVerify(b *testing.B) {
	a, err := New()
	if err != nil {
		b.Fatal(err)
	}
	tok := a.StampMessage([]byte("bench"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(a.PublicKey(), tok); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: tokens round-trip through Marshal/Unmarshal for arbitrary
// digests and still verify.
func TestQuickTokenRoundTrip(t *testing.T) {
	a, err := New()
	if err != nil {
		t.Fatal(err)
	}
	f := func(digest [32]byte) bool {
		tok := a.Stamp(digest)
		got, err := Unmarshal(tok.Marshal())
		if err != nil {
			return false
		}
		return got.Digest == digest && Verify(a.PublicKey(), got) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
