package provenance

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"irs/internal/ids"
	"irs/internal/photo"
)

func newSigner(t testing.TB) Signer {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return Signer{Pub: pub, Priv: priv}
}

func ts(h int) time.Time {
	return time.Date(2022, 11, 14, h, 0, 0, 0, time.UTC)
}

func TestFullChainLifecycle(t *testing.T) {
	device := newSigner(t)
	owner := newSigner(t)
	editor := newSigner(t)

	im := photo.Synth(1, 128, 96)
	chain, err := New(device, im, ts(9))
	if err != nil {
		t.Fatal(err)
	}
	id, err := ids.New(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := chain.AddIRSClaim(owner, id, im, ts(10)); err != nil {
		t.Fatal(err)
	}
	// An edit produces new content; the chain moves to the new hash.
	edited := photo.CompressJPEGLike(im, 75)
	if err := chain.AddEdit(editor, edited, "transcode q75", ts(11)); err != nil {
		t.Fatal(err)
	}
	if err := chain.AddPublished(editor, edited, "photosite", ts(12)); err != nil {
		t.Fatal(err)
	}

	// Verifies against the edited image.
	if err := chain.Verify(edited); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// But not against the original (content moved on).
	if err := chain.Verify(im); !errors.Is(err, ErrWrongContent) {
		t.Errorf("verify against stale content: %v", err)
	}
	// The claim binding survives the edit — §3.2's derivative intent.
	got, ok := chain.ClaimID()
	if !ok || got != id {
		t.Errorf("claim id %v ok=%v", got, ok)
	}
	origin, ok := chain.Origin()
	if !ok || !origin.Equal(device.Pub) {
		t.Error("origin device lost")
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	device := newSigner(t)
	im := photo.Synth(2, 128, 96)
	chain, err := New(device, im, ts(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := chain.AddEdit(device, im, "noop", ts(10)); err != nil {
		t.Fatal(err)
	}

	// Mutate an action string: signature must fail.
	chain.Assertions[1].Action = ActionPublished
	if err := chain.Verify(nil); !errors.Is(err, ErrBadSig) {
		t.Errorf("action tamper: %v", err)
	}
	chain.Assertions[1].Action = ActionEdited

	// Mutate a field.
	chain.Assertions[1].Fields["description"] = "innocent"
	if err := chain.Verify(nil); !errors.Is(err, ErrBadSig) {
		t.Errorf("field tamper: %v", err)
	}
	chain.Assertions[1].Fields["description"] = "noop"

	// Break the hash link.
	chain.Assertions[1].PrevHash[0] ^= 1
	if err := chain.Verify(nil); err == nil {
		t.Error("link tamper accepted")
	}
	chain.Assertions[1].PrevHash[0] ^= 1

	// Intact again.
	if err := chain.Verify(im); err != nil {
		t.Fatalf("restored chain: %v", err)
	}
}

func TestVerifyDetectsHistoryRewrite(t *testing.T) {
	// Replacing an early assertion (even with a validly signed one from
	// another actor) breaks every downstream link.
	device := newSigner(t)
	attacker := newSigner(t)
	im := photo.Synth(3, 128, 96)
	chain, err := New(device, im, ts(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := chain.AddEdit(device, im, "step", ts(10)); err != nil {
		t.Fatal(err)
	}
	forged, err := New(attacker, im, ts(8)) // attacker claims earlier capture
	if err != nil {
		t.Fatal(err)
	}
	chain.Assertions[0] = forged.Assertions[0]
	if err := chain.Verify(nil); !errors.Is(err, ErrBadLink) {
		t.Errorf("history rewrite: %v", err)
	}
}

func TestVerifyRejectsDegenerate(t *testing.T) {
	empty := &Chain{}
	if err := empty.Verify(nil); !errors.Is(err, ErrEmptyChain) {
		t.Errorf("empty: %v", err)
	}
	// Chain not starting with created.
	device := newSigner(t)
	im := photo.Synth(4, 128, 96)
	c := &Chain{}
	if err := c.appendAssertion(device, ActionEdited, im.ContentHash(), ts(9), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(nil); !errors.Is(err, ErrNoCreate) {
		t.Errorf("no-create: %v", err)
	}
}

func TestEmbedExtractRoundTrip(t *testing.T) {
	device := newSigner(t)
	owner := newSigner(t)
	im := photo.Synth(5, 128, 96)
	chain, err := New(device, im, ts(9))
	if err != nil {
		t.Fatal(err)
	}
	id, err := ids.New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := chain.AddIRSClaim(owner, id, im, ts(10)); err != nil {
		t.Fatal(err)
	}
	if err := chain.Embed(im); err != nil {
		t.Fatal(err)
	}
	got, present, err := Extract(im)
	if err != nil || !present {
		t.Fatalf("extract: %v present=%v", err, present)
	}
	if err := got.Verify(im); err != nil {
		t.Fatalf("extracted chain: %v", err)
	}
	gid, ok := got.ClaimID()
	if !ok || gid != id {
		t.Error("claim id lost in metadata round trip")
	}
	// Absent manifest.
	bare := photo.Synth(6, 64, 64)
	_, present, err = Extract(bare)
	if err != nil || present {
		t.Errorf("bare image: present=%v err=%v", present, err)
	}
	// Corrupt manifest.
	bad := photo.Synth(7, 64, 64)
	bad.Meta.Set(KeyManifest, "!!!not-base64!!!")
	if _, present, err = Extract(bad); !present || err == nil {
		t.Error("corrupt manifest not reported")
	}
}

func TestManifestStrippedWithMetadata(t *testing.T) {
	// The manifest rides in metadata, so stripping kills it — which is
	// exactly why IRS also watermarks (the two are complementary).
	device := newSigner(t)
	im := photo.Synth(8, 128, 96)
	chain, err := New(device, im, ts(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := chain.Embed(im); err != nil {
		t.Fatal(err)
	}
	stripped, err := photo.StripViaPNM(im)
	if err != nil {
		t.Fatal(err)
	}
	if _, present, _ := Extract(stripped); present {
		t.Error("manifest survived a strip — PNM must not carry metadata")
	}
}

func TestClaimIDPrefersLatest(t *testing.T) {
	device := newSigner(t)
	owner := newSigner(t)
	im := photo.Synth(9, 128, 96)
	chain, err := New(device, im, ts(9))
	if err != nil {
		t.Fatal(err)
	}
	id1, err := ids.New(1)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := ids.New(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := chain.AddIRSClaim(owner, id1, im, ts(10)); err != nil {
		t.Fatal(err)
	}
	if err := chain.AddIRSClaim(owner, id2, im, ts(11)); err != nil {
		t.Fatal(err)
	}
	got, ok := chain.ClaimID()
	if !ok || got != id2 {
		t.Errorf("ClaimID = %v, want latest %v", got, id2)
	}
}
