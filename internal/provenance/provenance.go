// Package provenance implements a C2PA-style content-provenance
// manifest chain.
//
// Paper §2 ("Relevant Technologies"): the Coalition for Content
// Provenance and Authenticity defines "open technical standards that
// give publishers, creators, and consumers the ability to trace the
// origin of different types of media; this involves the entire content
// supply chain, starting from origin device ..., to design and newsroom
// edits, all the way to the consumer", via "media metadata primitives
// that can be embedded in media files in a backward-compatible manner".
// The paper notes IRS "shares many technical challenges with C2PA and
// can benefit from the adoption of the C2PA metadata standard".
//
// This package provides the simplified equivalent: a hash-linked chain
// of Ed25519-signed assertions riding in photo metadata. Each assertion
// records an action ("created", "edited", "published", …), the actor's
// public key, the content hash *after* the action, and the hash of the
// previous assertion — so any tampering with history breaks
// verification.
//
// The IRS integration point is the "irs.claim" assertion: when a
// derivative is made, the editor appends an edit assertion while the
// chain retains the original claim reference, realizing §3.2's
// intention that "those making derivative images ... transfer the
// metadata to the modified version so that it is also revoked if the
// original is revoked".
package provenance

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"irs/internal/ids"
	"irs/internal/photo"
)

// Well-known assertion actions.
const (
	// ActionCreated starts every chain: the capture device's assertion.
	ActionCreated = "c2pa.created"
	// ActionEdited records a content transformation.
	ActionEdited = "c2pa.edited"
	// ActionPublished records a publication event (no content change).
	ActionPublished = "c2pa.published"
	// ActionIRSClaim binds an IRS claim identifier into the chain.
	ActionIRSClaim = "irs.claim"
)

// KeyManifest is the photo metadata key carrying the serialized chain.
const KeyManifest = "c2pa.manifest"

// Assertion is one link of the chain.
type Assertion struct {
	// Action is the event type.
	Action string `json:"action"`
	// Actor is the Ed25519 public key of whoever performed it.
	Actor []byte `json:"actor"`
	// Time is the asserted wall-clock time (informational; the signed
	// ordering is the chain itself).
	Time time.Time `json:"time"`
	// ContentHash is the photo's content hash after this action.
	ContentHash []byte `json:"content_hash"`
	// PrevHash is the hash of the previous assertion's canonical form
	// (all zeros for the first link).
	PrevHash []byte `json:"prev_hash"`
	// Fields carries action-specific data (e.g. the claim id for
	// ActionIRSClaim, or an edit description).
	Fields map[string]string `json:"fields,omitempty"`
	// Sig is the actor's signature over the canonical form.
	Sig []byte `json:"sig"`
}

// canonical returns the signed byte form: a stable JSON encoding of the
// assertion with Sig empty.
func (a *Assertion) canonical() ([]byte, error) {
	cp := *a
	cp.Sig = nil
	// encoding/json is deterministic for this shape (struct field order,
	// sorted map keys), so it serves as the canonical form.
	return json.Marshal(&cp)
}

// hash returns the chain-link hash of the assertion (including Sig, so
// re-signing also breaks downstream links).
func (a *Assertion) hash() ([32]byte, error) {
	b, err := json.Marshal(a)
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(b), nil
}

// Chain is an ordered assertion list.
type Chain struct {
	Assertions []*Assertion `json:"assertions"`
}

// Signer holds an actor's keypair.
type Signer struct {
	Pub  ed25519.PublicKey
	Priv ed25519.PrivateKey
}

// appendAssertion signs and links a new assertion.
func (c *Chain) appendAssertion(s Signer, action string, contentHash [32]byte, at time.Time, fields map[string]string) error {
	a := &Assertion{
		Action:      action,
		Actor:       append([]byte(nil), s.Pub...),
		Time:        at.UTC(),
		ContentHash: contentHash[:],
		Fields:      fields,
	}
	if n := len(c.Assertions); n == 0 {
		a.PrevHash = make([]byte, 32)
	} else {
		prev, err := c.Assertions[n-1].hash()
		if err != nil {
			return err
		}
		a.PrevHash = prev[:]
	}
	msg, err := a.canonical()
	if err != nil {
		return err
	}
	a.Sig = ed25519.Sign(s.Priv, msg)
	c.Assertions = append(c.Assertions, a)
	return nil
}

// New starts a chain with the capture assertion.
func New(device Signer, im *photo.Image, at time.Time) (*Chain, error) {
	c := &Chain{}
	if err := c.appendAssertion(device, ActionCreated, im.ContentHash(), at, nil); err != nil {
		return nil, err
	}
	return c, nil
}

// AddIRSClaim binds a claim identifier; the content hash is unchanged
// (claiming does not alter pixels).
func (c *Chain) AddIRSClaim(owner Signer, id ids.PhotoID, im *photo.Image, at time.Time) error {
	return c.appendAssertion(owner, ActionIRSClaim, im.ContentHash(), at,
		map[string]string{"id": id.String()})
}

// AddEdit records a transformation to a new content state.
func (c *Chain) AddEdit(editor Signer, after *photo.Image, description string, at time.Time) error {
	return c.appendAssertion(editor, ActionEdited, after.ContentHash(), at,
		map[string]string{"description": description})
}

// AddPublished records a publication event.
func (c *Chain) AddPublished(publisher Signer, im *photo.Image, venue string, at time.Time) error {
	return c.appendAssertion(publisher, ActionPublished, im.ContentHash(), at,
		map[string]string{"venue": venue})
}

// Verification errors.
var (
	ErrEmptyChain   = errors.New("provenance: empty chain")
	ErrBadLink      = errors.New("provenance: hash link broken")
	ErrBadSig       = errors.New("provenance: assertion signature invalid")
	ErrWrongContent = errors.New("provenance: final content hash does not match photo")
	ErrNoCreate     = errors.New("provenance: chain does not start with a created assertion")
)

// Verify checks the whole chain: signatures, hash links, and (when im
// is non-nil) that the final content hash matches the photo presented.
func (c *Chain) Verify(im *photo.Image) error {
	if len(c.Assertions) == 0 {
		return ErrEmptyChain
	}
	if c.Assertions[0].Action != ActionCreated {
		return ErrNoCreate
	}
	var prevHash [32]byte
	for i, a := range c.Assertions {
		if len(a.PrevHash) != 32 {
			return fmt.Errorf("%w: assertion %d prev hash length", ErrBadLink, i)
		}
		var got [32]byte
		copy(got[:], a.PrevHash)
		if got != prevHash {
			return fmt.Errorf("%w: assertion %d", ErrBadLink, i)
		}
		if len(a.Actor) != ed25519.PublicKeySize {
			return fmt.Errorf("%w: assertion %d actor key", ErrBadSig, i)
		}
		msg, err := a.canonical()
		if err != nil {
			return err
		}
		if !ed25519.Verify(ed25519.PublicKey(a.Actor), msg, a.Sig) {
			return fmt.Errorf("%w: assertion %d", ErrBadSig, i)
		}
		prevHash, err = a.hash()
		if err != nil {
			return err
		}
	}
	if im != nil {
		final := c.Assertions[len(c.Assertions)-1].ContentHash
		want := im.ContentHash()
		if len(final) != 32 || want != sliceTo32(final) {
			return ErrWrongContent
		}
	}
	return nil
}

func sliceTo32(b []byte) (out [32]byte) {
	copy(out[:], b)
	return
}

// ClaimID extracts the most recent IRS claim binding, if any.
func (c *Chain) ClaimID() (ids.PhotoID, bool) {
	for i := len(c.Assertions) - 1; i >= 0; i-- {
		a := c.Assertions[i]
		if a.Action != ActionIRSClaim {
			continue
		}
		id, err := ids.Parse(a.Fields["id"])
		if err != nil {
			continue
		}
		return id, true
	}
	return ids.PhotoID{}, false
}

// Origin returns the capture assertion's actor key — the device that
// started the chain.
func (c *Chain) Origin() (ed25519.PublicKey, bool) {
	if len(c.Assertions) == 0 || c.Assertions[0].Action != ActionCreated {
		return nil, false
	}
	return ed25519.PublicKey(c.Assertions[0].Actor), true
}

// Embed serializes the chain into the photo's metadata.
func (c *Chain) Embed(im *photo.Image) error {
	b, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("provenance: encoding manifest: %w", err)
	}
	im.Meta.Set(KeyManifest, base64.StdEncoding.EncodeToString(b))
	return nil
}

// Extract reads a chain from photo metadata. ok is false when no
// manifest is present.
func Extract(im *photo.Image) (*Chain, bool, error) {
	raw := im.Meta.Get(KeyManifest)
	if raw == "" {
		return nil, false, nil
	}
	b, err := base64.StdEncoding.DecodeString(raw)
	if err != nil {
		return nil, true, fmt.Errorf("provenance: decoding manifest: %w", err)
	}
	var c Chain
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, true, fmt.Errorf("provenance: parsing manifest: %w", err)
	}
	return &c, true, nil
}
