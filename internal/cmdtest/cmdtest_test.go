// Package cmdtest smoke-tests the six binaries as real processes — the
// ledger, proxy, relay, and site servers, the owner CLI, and the bench
// harness. These are the only tests that exercise flag parsing,
// startup/shutdown, and the operational wiring in cmd/.
package cmdtest

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"irs/internal/ids"
	"irs/internal/photo"
	"irs/internal/relay"
	"irs/internal/watermark"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "irs-bins")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binDir = dir
	for _, tool := range []string{"irs-ledger", "irs-proxy", "irsctl", "irs-bench", "irs-site", "irs-relay"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "irs/cmd/"+tool)
		if out, err := cmd.CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "building %s: %v\n%s", tool, err, out)
			os.RemoveAll(dir)
			os.Exit(1)
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// freePort grabs an ephemeral port. Slightly racy between close and
// reuse, but fine for tests.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// startDaemon launches a binary and waits until probe returns 200.
func startDaemon(t *testing.T, name string, probe string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, name), args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", name, err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(probe)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s did not become ready at %s", name, probe)
	return nil
}

func runCtl(t *testing.T, ledgerURL, keystore string, args ...string) (string, error) {
	t.Helper()
	full := append([]string{"-ledger", ledgerURL, "-keystore", keystore}, args...)
	out, err := exec.Command(filepath.Join(binDir, "irsctl"), full...).CombinedOutput()
	return string(out), err
}

func TestFullOperatorFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	dataDir := t.TempDir()
	ledgerPort := freePort(t)
	ledgerURL := fmt.Sprintf("http://127.0.0.1:%d", ledgerPort)
	// Short snapshot interval so the revocation below reaches the
	// proxy's filter within the test's patience.
	startDaemon(t, "irs-ledger", ledgerURL+"/v1/keys",
		"-id", "1", "-addr", fmt.Sprintf("127.0.0.1:%d", ledgerPort),
		"-dir", filepath.Join(dataDir, "ledger"),
		"-snapshot-interval", "150ms")

	proxyPort := freePort(t)
	proxyURL := fmt.Sprintf("http://127.0.0.1:%d", proxyPort)
	startDaemon(t, "irs-proxy", proxyURL+"/v1/stats",
		"-addr", fmt.Sprintf("127.0.0.1:%d", proxyPort),
		"-ledger", "1="+ledgerURL)

	keystore := filepath.Join(dataDir, "keys.json")
	photoFile := filepath.Join(dataDir, "photo.irsp")

	// Shoot: claim + label + write.
	out, err := runCtl(t, ledgerURL, keystore, "shoot", "7", photoFile)
	if err != nil {
		t.Fatalf("shoot: %v\n%s", err, out)
	}
	if !strings.Contains(out, "claimed ") {
		t.Fatalf("shoot output: %s", out)
	}
	// Parse the id out of "claimed <id>".
	var id string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "claimed ") {
			id = strings.TrimSpace(strings.TrimPrefix(line, "claimed "))
		}
	}
	if id == "" {
		t.Fatalf("no id in shoot output: %s", out)
	}

	// Inspect: both label halves present.
	out, err = runCtl(t, ledgerURL, keystore, "inspect", photoFile)
	if err != nil {
		t.Fatalf("inspect: %v\n%s", err, out)
	}
	if !strings.Contains(out, "metadata label: "+id) || !strings.Contains(out, "watermark:      "+id) {
		t.Fatalf("inspect output missing label halves:\n%s", out)
	}

	// Status: active.
	out, err = runCtl(t, ledgerURL, keystore, "status", id)
	if err != nil {
		t.Fatalf("status: %v\n%s", err, out)
	}
	if !strings.Contains(out, "active") {
		t.Fatalf("status output: %s", out)
	}

	// List shows the owned photo.
	out, err = runCtl(t, ledgerURL, keystore, "list")
	if err != nil || !strings.Contains(out, id) {
		t.Fatalf("list: %v\n%s", err, out)
	}

	// Revoke, then status shows revoked.
	if out, err = runCtl(t, ledgerURL, keystore, "revoke", id); err != nil {
		t.Fatalf("revoke: %v\n%s", err, out)
	}
	out, err = runCtl(t, ledgerURL, keystore, "status", id)
	if err != nil || !strings.Contains(out, "revoked") {
		t.Fatalf("status after revoke: %v\n%s", err, out)
	}

	// Audit the (honest) ledger.
	out, err = runCtl(t, ledgerURL, keystore, "audit")
	if err != nil || !strings.Contains(out, "healthy") {
		t.Fatalf("audit: %v\n%s", err, out)
	}

	// The proxy blocks the revoked photo once the ledger's next
	// snapshot cycle lands and the proxy refreshes — the bounded
	// propagation window of Nongoal #4. Poll until it closes.
	var v struct {
		Displayable bool   `json:"displayable"`
		State       string `json:"state"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Post(proxyURL+"/v1/refresh", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		resp, err = http.Get(proxyURL + "/v1/validate?id=" + id)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.State == "revoked" {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if v.Displayable || v.State != "revoked" {
		t.Errorf("proxy validate never converged: %+v", v)
	}

	// Unrevoke works with the persisted keystore.
	if out, err = runCtl(t, ledgerURL, keystore, "unrevoke", id); err != nil {
		t.Fatalf("unrevoke: %v\n%s", err, out)
	}
}

func TestBenchHarnessCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	out, err := exec.Command(filepath.Join(binDir, "irs-bench"), "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("-list: %v\n%s", err, out)
	}
	for _, id := range []string{"e1", "e9", "e10", "ablation-filters"} {
		if !strings.Contains(string(out), id) {
			t.Errorf("-list missing %s", id)
		}
	}
	out, err = exec.Command(filepath.Join(binDir, "irs-bench"),
		"-run", "e1,e8", "-scale", "quick", "-seed", "7").CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "== E1:") || !strings.Contains(string(out), "== E8:") {
		t.Errorf("bench output missing tables:\n%s", out)
	}
	// Unknown experiment fails loudly.
	if _, err := exec.Command(filepath.Join(binDir, "irs-bench"), "-run", "nope").CombinedOutput(); err == nil {
		t.Error("unknown experiment exited 0")
	}
}

func TestLedgerRejectsBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	out, err := exec.Command(filepath.Join(binDir, "irs-ledger"), "-id", "0").CombinedOutput()
	if err == nil {
		t.Errorf("id=0 accepted:\n%s", out)
	}
	out, err = exec.Command(filepath.Join(binDir, "irs-proxy")).CombinedOutput()
	if err == nil {
		t.Errorf("proxy with no ledgers accepted:\n%s", out)
	}
	_ = out
}

// TestAppealViaCLI runs the §5 attack against two real ledger
// processes and resolves it with `irsctl appeal`.
func TestAppealViaCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	dataDir := t.TempDir()

	// Ledger 1 (victim's).
	p1 := freePort(t)
	url1 := fmt.Sprintf("http://127.0.0.1:%d", p1)
	startDaemon(t, "irs-ledger", url1+"/v1/keys",
		"-id", "1", "-addr", fmt.Sprintf("127.0.0.1:%d", p1))
	// Ledger 2 (attacker's), trusting ledger 1's timestamps for appeals.
	p2 := freePort(t)
	url2 := fmt.Sprintf("http://127.0.0.1:%d", p2)
	startDaemon(t, "irs-ledger", url2+"/v1/keys",
		"-id", "2", "-addr", fmt.Sprintf("127.0.0.1:%d", p2),
		"-trust-ledger", "1="+url1)

	victimKeys := filepath.Join(dataDir, "victim.json")
	attackerKeys := filepath.Join(dataDir, "attacker.json")
	origFile := filepath.Join(dataDir, "orig.irsp")

	// Victim shoots + claims + revokes on ledger 1.
	out, err := runCtl(t, url1, victimKeys, "shoot", "99", origFile)
	if err != nil {
		t.Fatalf("shoot: %v\n%s", err, out)
	}
	var victimID string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "claimed ") {
			victimID = strings.TrimSpace(strings.TrimPrefix(line, "claimed "))
		}
	}
	if out, err := runCtl(t, url1, victimKeys, "revoke", victimID); err != nil {
		t.Fatalf("revoke: %v\n%s", err, out)
	}

	// Attacker: erase watermark + strip metadata in-process (the part a
	// CLI would never ship), then claims the copy on ledger 2 via CLI.
	orig, err := readIRSPFile(origFile)
	if err != nil {
		t.Fatal(err)
	}
	stolen, err := watermark.Erase(orig, watermark.DefaultConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	stolen.Meta.StripAll()
	stolenFile := filepath.Join(dataDir, "stolen.irsp")
	if err := writeIRSPFile(stolenFile, stolen); err != nil {
		t.Fatal(err)
	}
	copyFile := filepath.Join(dataDir, "attack-copy.irsp")
	out, err = runCtl(t, url2, attackerKeys, "claim", stolenFile, copyFile)
	if err != nil {
		t.Fatalf("attacker claim: %v\n%s", err, out)
	}
	var attackID string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "claimed ") {
			attackID = strings.Fields(strings.TrimPrefix(line, "claimed "))[0]
		}
	}
	if attackID == "" {
		t.Fatalf("no attack id in: %s", out)
	}

	// The attack works: the copy is active on ledger 2.
	out, err = runCtl(t, url2, attackerKeys, "status", attackID)
	if err != nil || !strings.Contains(out, "active") {
		t.Fatalf("attack status: %v\n%s", err, out)
	}

	// Victim appeals to ledger 2 via CLI, presenting the vaulted
	// original (the pixels the claim timestamp covers).
	out, err = runCtl(t, url1, victimKeys, "appeal", origFile+".orig", copyFile, attackID, url2)
	if err != nil {
		t.Fatalf("appeal: %v\n%s", err, out)
	}
	if !strings.Contains(out, "upheld") {
		t.Fatalf("appeal output: %s", out)
	}
	out, err = runCtl(t, url2, attackerKeys, "status", attackID)
	if err != nil || !strings.Contains(out, "permanently-revoked") {
		t.Fatalf("post-appeal status: %v\n%s", err, out)
	}
}

func readIRSPFile(path string) (*photo.Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return photo.DecodeIRSP(f)
}

func writeIRSPFile(path string, im *photo.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := photo.EncodeIRSP(f, im); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// TestSiteBinary drives the aggregator service end to end: ledger +
// site processes, CLI-claimed photo, upload/serve/recheck over HTTP.
func TestSiteBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	dataDir := t.TempDir()
	lp := freePort(t)
	ledgerURL := fmt.Sprintf("http://127.0.0.1:%d", lp)
	startDaemon(t, "irs-ledger", ledgerURL+"/v1/keys",
		"-id", "1", "-addr", fmt.Sprintf("127.0.0.1:%d", lp))

	sp := freePort(t)
	siteURL := fmt.Sprintf("http://127.0.0.1:%d", sp)
	startDaemon(t, "irs-site", siteURL+"/v1/stats",
		"-addr", fmt.Sprintf("127.0.0.1:%d", sp),
		"-ledger", "1="+ledgerURL,
		"-recheck-interval", "150ms")

	keystore := filepath.Join(dataDir, "keys.json")
	photoFile := filepath.Join(dataDir, "photo.irsp")
	out, err := runCtl(t, ledgerURL, keystore, "shoot", "11", photoFile)
	if err != nil {
		t.Fatalf("shoot: %v\n%s", err, out)
	}
	var id string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "claimed ") {
			id = strings.TrimSpace(strings.TrimPrefix(line, "claimed "))
		}
	}

	// Upload the labeled photo to the site.
	raw, err := os.ReadFile(photoFile)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(siteURL+"/v1/upload", "application/x-irsp", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		Accepted bool   `json:"accepted"`
		ID       string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !up.Accepted || up.ID != id {
		t.Fatalf("upload: %+v", up)
	}

	// Served with proof.
	resp, err = http.Get(siteURL + "/v1/photo?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("serve status %d", resp.StatusCode)
	}

	// Revoke via CLI; the site's recheck timer takes it down.
	if out, err := runCtl(t, ledgerURL, keystore, "revoke", id); err != nil {
		t.Fatalf("revoke: %v\n%s", err, out)
	}
	deadline := time.Now().Add(10 * time.Second)
	status := 0
	for time.Now().Before(deadline) {
		resp, err := http.Get(siteURL + "/v1/photo?id=" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		status = resp.StatusCode
		if status == http.StatusNotFound {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if status != http.StatusNotFound {
		t.Errorf("revoked photo still served (status %d)", status)
	}
}

// TestRelayBinaries drives the oblivious path as three real processes:
// ledger, egress, ingress.
func TestRelayBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	lp := freePort(t)
	ledgerURL := fmt.Sprintf("http://127.0.0.1:%d", lp)
	startDaemon(t, "irs-ledger", ledgerURL+"/v1/keys",
		"-id", "1", "-addr", fmt.Sprintf("127.0.0.1:%d", lp))

	ep := freePort(t)
	egressURL := fmt.Sprintf("http://127.0.0.1:%d", ep)
	startDaemon(t, "irs-relay", egressURL+"/v1/relay-key",
		"-mode", "egress", "-addr", fmt.Sprintf("127.0.0.1:%d", ep),
		"-ledger", "1="+ledgerURL)

	ip := freePort(t)
	ingressURL := fmt.Sprintf("http://127.0.0.1:%d", ip)
	// The ingress has no GET endpoint; probe via the egress-backed POST
	// path readiness by polling the egress key through the ingress
	// port... simplest: start and poll a sealed round trip.
	cmd := exec.Command(filepath.Join(binDir, "irs-relay"),
		"-mode", "ingress", "-addr", fmt.Sprintf("127.0.0.1:%d", ip),
		"-egress", egressURL)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	})

	// Claim + revoke a photo via CLI so the query has a real answer.
	dataDir := t.TempDir()
	keystore := filepath.Join(dataDir, "keys.json")
	out, err := runCtl(t, ledgerURL, keystore, "shoot", "21", filepath.Join(dataDir, "p.irsp"))
	if err != nil {
		t.Fatalf("shoot: %v\n%s", err, out)
	}
	var idStr string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "claimed ") {
			idStr = strings.TrimSpace(strings.TrimPrefix(line, "claimed "))
		}
	}
	if out, err := runCtl(t, ledgerURL, keystore, "revoke", idStr); err != nil {
		t.Fatalf("revoke: %v\n%s", err, out)
	}

	// Fetch the egress key, seal a query, send via the ingress.
	resp, err := http.Get(egressURL + "/v1/relay-key")
	if err != nil {
		t.Fatal(err)
	}
	var keyResp map[string][]byte
	if err := json.NewDecoder(resp.Body).Decode(&keyResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	client, err := relay.NewClient(keyResp["key"])
	if err != nil {
		t.Fatal(err)
	}
	id, err := ids.Parse(idStr)
	if err != nil {
		t.Fatal(err)
	}
	q, pending, err := client.Seal(id)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	// Poll the ingress until it answers (it may still be binding). The
	// egress holds an empty filter snapshot... the ledger built one at
	// startup before the claim, so the filter misses and the egress
	// must fall through to a live ledger query for the truth — which is
	// exactly the stale-filter path. Accept either revoked (ledger
	// answered) or active (filter answered pre-claim snapshot).
	deadline := time.Now().Add(10 * time.Second)
	var answered bool
	var state string
	for time.Now().Before(deadline) {
		resp, err := http.Post(ingressURL+"/v1/relay", "application/json", strings.NewReader(string(body)))
		if err != nil {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		var sr relay.SealedResponse
		decodeErr := json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || decodeErr != nil {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		r, err := pending.Open(sr.Box)
		if err != nil {
			t.Fatal(err)
		}
		answered = true
		state = r.State.String()
		break
	}
	if !answered {
		t.Fatal("relay round trip never completed")
	}
	if state != "revoked" && state != "active" {
		t.Errorf("relayed state %q", state)
	}
}
