// Package core is the public façade of the IRS reproduction: a complete
// Internet Revocation System wired together — ledgers, a proxy, content
// aggregators, owner cameras, the browser-extension viewing path, and
// the appeals process — behind one System type.
//
// A downstream user embeds IRS in three steps:
//
//	sys, _ := core.NewSystem(core.Options{Ledgers: 2})
//	alice := sys.NewOwner("ledger-1")
//	labeled, owned, _ := alice.ClaimAndLabel(alice.Shoot(1, 256, 192))
//	... share labeled ...
//	_ = alice.Revoke(owned.ID)
//	sys.RefreshFilters()
//	dec := sys.View(labeled)   // dec.Display == false
//
// System assembles in-process components (wire.Loopback); the cmd/
// binaries assemble the identical pieces over HTTP. Both paths exercise
// the same ledger, proxy, and aggregator code.
package core

import (
	"errors"
	"fmt"
	"time"

	"irs/internal/aggregator"
	"irs/internal/appeals"
	"irs/internal/camera"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/photo"
	"irs/internal/proxy"
	"irs/internal/watermark"
	"irs/internal/wire"
)

// Options configures a local System.
type Options struct {
	// Ledgers is how many commercial ledgers to run (≥ 1). Ledger IDs
	// are 1..N.
	Ledgers int
	// DataDir persists ledger state under DataDir/ledger-<id>; empty
	// means in-memory.
	DataDir string
	// Clock drives every component; nil means time.Now. Experiments
	// inject virtual clocks.
	Clock func() time.Time
	// ProxyCache is the proxy's proof-cache capacity; 0 uses 4096.
	ProxyCache int
	// ProxyTTL is the proxy cache TTL (the revocation propagation
	// bound); 0 uses 5 minutes.
	ProxyTTL time.Duration
	// NonRevocableLedgers lists ledger IDs to run under the §5
	// human-rights policy.
	NonRevocableLedgers []ids.LedgerID
	// BrowserFilter additionally holds the revocation filters inside
	// the browser itself — §4.4: "during early adoption, when the photo
	// population is small ..., one could use the same strategy to
	// reduce the load on the proxies by inserting a Bloom filter in
	// browsers themselves." Filter misses then never leave the device.
	BrowserFilter bool
}

// System is a fully wired in-process IRS deployment.
type System struct {
	opts      Options
	ledgers   map[ids.LedgerID]*ledger.Ledger
	directory *wire.Directory
	validator *proxy.Validator
	// browserVal is the optional in-browser filter layer; its "ledger
	// queries" are requests to the proxy.
	browserVal *proxy.Validator
	wmCfg      watermark.Config
}

// NewSystem builds a System.
func NewSystem(opts Options) (*System, error) {
	if opts.Ledgers < 1 {
		return nil, errors.New("core: at least one ledger required")
	}
	nonRev := make(map[ids.LedgerID]bool)
	for _, id := range opts.NonRevocableLedgers {
		nonRev[id] = true
	}
	s := &System{
		opts:      opts,
		ledgers:   make(map[ids.LedgerID]*ledger.Ledger),
		directory: wire.NewDirectory(),
		wmCfg:     watermark.DefaultConfig(),
	}
	for i := 1; i <= opts.Ledgers; i++ {
		id := ids.LedgerID(i)
		cfg := ledger.Config{ID: id, Clock: opts.Clock, NonRevocable: nonRev[id]}
		if opts.DataDir != "" {
			cfg.Dir = fmt.Sprintf("%s/ledger-%d", opts.DataDir, i)
		}
		l, err := ledger.New(cfg)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.ledgers[id] = l
		s.directory.Register(id, &wire.Loopback{L: l})
	}
	cacheCap := opts.ProxyCache
	if cacheCap == 0 {
		cacheCap = 4096
	}
	s.validator = proxy.NewValidator(proxy.Config{
		CacheCapacity: cacheCap,
		CacheTTL:      opts.ProxyTTL,
		UseFilter:     true,
		Clock:         opts.Clock,
	}, func(id ids.PhotoID) (*ledger.StatusProof, error) {
		svc, err := s.directory.For(id)
		if err != nil {
			return nil, err
		}
		return svc.Status(id)
	})
	if opts.BrowserFilter {
		// The browser layer has no proof cache of its own (the proxy
		// caches); its upstream "query" is the proxy.
		s.browserVal = proxy.NewValidator(proxy.Config{
			UseFilter: true,
			Clock:     opts.Clock,
		}, func(id ids.PhotoID) (*ledger.StatusProof, error) {
			res, err := s.validator.Validate(id)
			if err != nil {
				return nil, err
			}
			if res.Proof != nil {
				return res.Proof, nil
			}
			// Filter-miss answers carry no proof; synthesize the state
			// for the caller. IssuedAt is zero: there is no ledger
			// attestation to misrepresent.
			return &ledger.StatusProof{ID: id, State: res.State}, nil
		})
	}
	return s, nil
}

// ProxyQueries reports how many validations reached the proxy — the
// quantity the §4.4 browser-resident filter reduces.
func (s *System) ProxyQueries() uint64 { return s.validator.Stats().Total }

// Close releases all ledgers.
func (s *System) Close() error {
	var firstErr error
	for _, l := range s.ledgers {
		if err := l.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Ledger returns a ledger by ID.
func (s *System) Ledger(id ids.LedgerID) (*ledger.Ledger, error) {
	l, ok := s.ledgers[id]
	if !ok {
		return nil, fmt.Errorf("core: no ledger %d", id)
	}
	return l, nil
}

// Directory exposes the ledger directory for components that validate.
func (s *System) Directory() *wire.Directory { return s.directory }

// Proxy exposes the proxy validator.
func (s *System) Proxy() *proxy.Validator { return s.validator }

// NewOwner creates owner-side camera software claiming on the given
// ledger ("ledger-1" style names or numeric IDs 1..N map directly).
func (s *System) NewOwner(ledgerID ids.LedgerID) (*camera.Camera, error) {
	l, ok := s.ledgers[ledgerID]
	if !ok {
		return nil, fmt.Errorf("core: no ledger %d", ledgerID)
	}
	return camera.New(&wire.Loopback{L: l}, fmt.Sprintf("irs://ledger/%d", ledgerID), nil), nil
}

// NewAggregator creates an IRS-supporting content aggregator validating
// against this system's ledgers. Custodial claims go to custodialLedger.
func (s *System) NewAggregator(name string, policy aggregator.UnlabeledPolicy, custodialLedger ids.LedgerID) (*aggregator.Aggregator, error) {
	svc, ok := s.ledgers[custodialLedger]
	if !ok && policy == aggregator.CustodialClaim {
		return nil, fmt.Errorf("core: no ledger %d for custodial claims", custodialLedger)
	}
	cfg := aggregator.Config{
		Name:      name,
		Unlabeled: policy,
		Clock:     s.opts.Clock,
	}
	if ok {
		cfg.CustodialLedger = &wire.Loopback{L: svc}
		cfg.CustodialLedgerURL = fmt.Sprintf("irs://ledger/%d", custodialLedger)
	}
	return aggregator.New(cfg, s.directory)
}

// NewAdjudicator creates the appeals adjudicator for claims on the given
// ledger, trusting every ledger in the system as a timestamp source.
func (s *System) NewAdjudicator(ledgerID ids.LedgerID, review appeals.ReviewFunc) (*appeals.Adjudicator, error) {
	l, ok := s.ledgers[ledgerID]
	if !ok {
		return nil, fmt.Errorf("core: no ledger %d", ledgerID)
	}
	adj := appeals.NewAdjudicator(l, review)
	for id, other := range s.ledgers {
		adj.TrustLedger(id, other.TimestampKey())
	}
	return adj, nil
}

// RefreshFilters rebuilds every ledger's revocation filter snapshot and
// pulls them into the proxy (and, when enabled, the browser-resident
// filter) — the hourly cycle of §4.4.
func (s *System) RefreshFilters() error {
	for _, l := range s.ledgers {
		if _, err := l.BuildSnapshot(); err != nil {
			return err
		}
	}
	if err := s.validator.RefreshFilters(s.directory); err != nil {
		return err
	}
	if s.browserVal != nil {
		return s.browserVal.RefreshFilters(s.directory)
	}
	return nil
}

// ViewDecision is the browser extension's verdict on a photo.
type ViewDecision struct {
	// Display says whether the photo may be shown.
	Display bool
	// Reason explains the decision.
	Reason string
	// ID is the label's identifier when one was found.
	ID ids.PhotoID
	// Source reports how the validation was answered (filter, cache, or
	// ledger) when a check ran.
	Source proxy.Source
}

// View runs the browser-extension path on a photo: extract the label
// (metadata first, watermark as fallback when metadata was stripped) and
// validate through the proxy. Unlabeled photos display — the bootstrap
// extension can only act on labeled content (Goal #3 is about informed
// behaviour, not blanket blocking).
func (s *System) View(im *photo.Image) ViewDecision {
	id, found := s.extractID(im)
	if !found {
		return ViewDecision{Display: true, Reason: "unlabeled"}
	}
	val := s.validator
	if s.browserVal != nil {
		val = s.browserVal
	}
	res, err := val.Validate(id)
	if err != nil {
		// Default-deny on validation failure: the extension must not
		// show content it cannot vet (Goal #3).
		return ViewDecision{Display: false, Reason: fmt.Sprintf("validation failed: %v", err), ID: id}
	}
	if res.State == ledger.StateActive {
		return ViewDecision{Display: true, Reason: "active", ID: id, Source: res.Source}
	}
	return ViewDecision{Display: false, Reason: res.State.String(), ID: id, Source: res.Source}
}

func (s *System) extractID(im *photo.Image) (ids.PhotoID, bool) {
	if raw := im.Meta.Get(photo.KeyIRSID); raw != "" {
		if id, err := ids.Parse(raw); err == nil {
			return id, true
		}
	}
	if res, err := watermark.ExtractAligned(im, s.wmCfg); err == nil {
		return ids.FromBytes(res.Payload), true
	}
	if res, err := watermark.Extract(im, s.wmCfg); err == nil {
		return ids.FromBytes(res.Payload), true
	}
	return ids.PhotoID{}, false
}
