package core

import (
	"testing"
	"time"

	"irs/internal/aggregator"
	"irs/internal/appeals"
	"irs/internal/camera"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/photo"
	"irs/internal/proxy"
	"irs/internal/watermark"
)

func newSystem(t *testing.T, opts Options) *System {
	t.Helper()
	if opts.Ledgers == 0 {
		opts.Ledgers = 2
	}
	s, err := NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSystemValidation(t *testing.T) {
	if _, err := NewSystem(Options{}); err == nil {
		t.Error("zero ledgers accepted")
	}
	s := newSystem(t, Options{Ledgers: 1})
	if _, err := s.Ledger(9); err == nil {
		t.Error("unknown ledger returned")
	}
	if _, err := s.NewOwner(9); err == nil {
		t.Error("owner on unknown ledger accepted")
	}
	if _, err := s.NewAdjudicator(9, nil); err == nil {
		t.Error("adjudicator on unknown ledger accepted")
	}
}

func TestClaimShareRevokeView(t *testing.T) {
	// The headline lifecycle: claim → share → view OK → revoke →
	// refresh → view blocked.
	s := newSystem(t, Options{Ledgers: 2})
	alice, err := s.NewOwner(1)
	if err != nil {
		t.Fatal(err)
	}
	labeled, owned, err := alice.ClaimAndLabel(alice.Shoot(1, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RefreshFilters(); err != nil {
		t.Fatal(err)
	}

	dec := s.View(labeled)
	if !dec.Display || dec.ID != owned.ID {
		t.Fatalf("pre-revocation view: %+v", dec)
	}
	// Not revoked → the filter answers locally, no ledger query.
	if dec.Source != proxy.SourceFilter {
		t.Errorf("active view answered from %v, want filter", dec.Source)
	}

	if err := alice.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.RefreshFilters(); err != nil {
		t.Fatal(err)
	}
	dec = s.View(labeled)
	if dec.Display {
		t.Fatalf("revoked photo displayed: %+v", dec)
	}
	if dec.Reason != "revoked" {
		t.Errorf("reason %q", dec.Reason)
	}
}

func TestViewStrippedMetadataUsesWatermark(t *testing.T) {
	s := newSystem(t, Options{Ledgers: 1})
	alice, err := s.NewOwner(1)
	if err != nil {
		t.Fatal(err)
	}
	labeled, owned, err := alice.ClaimAndLabel(alice.Shoot(2, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.RefreshFilters(); err != nil {
		t.Fatal(err)
	}
	stripped, err := photo.StripViaPNM(labeled)
	if err != nil {
		t.Fatal(err)
	}
	dec := s.View(stripped)
	if dec.Display {
		t.Fatal("metadata strip defeated the extension — watermark fallback broken")
	}
	if dec.ID != owned.ID {
		t.Errorf("recovered id %v, want %v", dec.ID, owned.ID)
	}
}

func TestViewUnlabeledDisplays(t *testing.T) {
	s := newSystem(t, Options{Ledgers: 1})
	dec := s.View(photo.Synth(3, 192, 128))
	if !dec.Display || dec.Reason != "unlabeled" {
		t.Errorf("unlabeled view: %+v", dec)
	}
}

func TestMultiLedgerRouting(t *testing.T) {
	s := newSystem(t, Options{Ledgers: 3})
	for lid := ids.LedgerID(1); lid <= 3; lid++ {
		owner, err := s.NewOwner(lid)
		if err != nil {
			t.Fatal(err)
		}
		labeled, owned, err := owner.ClaimAndLabel(owner.Shoot(int64(lid), 192, 128))
		if err != nil {
			t.Fatal(err)
		}
		if owned.ID.Ledger != lid {
			t.Fatalf("claim landed on ledger %d, want %d", owned.ID.Ledger, lid)
		}
		if dec := s.View(labeled); !dec.Display {
			t.Fatalf("ledger %d view: %+v", lid, dec)
		}
	}
}

func TestNonRevocableLedgerOption(t *testing.T) {
	s := newSystem(t, Options{Ledgers: 2, NonRevocableLedgers: []ids.LedgerID{2}})
	rights, err := s.NewOwner(2)
	if err != nil {
		t.Fatal(err)
	}
	_, owned, err := rights.ClaimAndLabel(rights.Shoot(4, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if err := rights.Revoke(owned.ID); err == nil {
		t.Error("revocation succeeded on non-revocable ledger")
	}
}

func TestFullPipelineWithAggregatorAndAppeal(t *testing.T) {
	// The complete paper scenario in one integration test:
	// 1. Alice claims and shares a photo.
	// 2. It is uploaded to an aggregator and served.
	// 3. Alice revokes; the aggregator's recheck takes it down.
	// 4. An attacker re-claims a copy; the appeal kills it.
	now := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	s := newSystem(t, Options{Ledgers: 2, Clock: clock})
	alice, err := s.NewOwner(1)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := s.NewAggregator("photosite", aggregator.RejectUnlabeled, 2)
	if err != nil {
		t.Fatal(err)
	}

	labeled, owned, err := alice.ClaimAndLabel(alice.Shoot(5, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	res, err := agg.Upload(labeled)
	if err != nil || !res.Accepted {
		t.Fatalf("upload: %+v %v", res, err)
	}
	if _, err := agg.Serve(owned.ID); err != nil {
		t.Fatal(err)
	}

	if err := alice.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	down, err := agg.RecheckAll()
	if err != nil {
		t.Fatal(err)
	}
	if down != 1 || agg.Hosts(owned.ID) {
		t.Fatalf("recheck removed %d", down)
	}

	// Attacker re-claims on ledger 2 an hour later.
	now = now.Add(time.Hour)
	attacker, err := s.NewOwner(2)
	if err != nil {
		t.Fatal(err)
	}
	stolen, err := watermark.Erase(labeled, watermark.DefaultConfig(), 9)
	if err != nil {
		t.Fatal(err)
	}
	stolen.Meta.StripAll()
	attackLabeled, attackOwned, err := attacker.ClaimAndLabel(stolen)
	if err != nil {
		t.Fatal(err)
	}
	// The attack works: the re-claimed copy uploads fine. (The
	// robust-hash derivative defense doesn't trigger because the
	// original was already taken down; a fresh aggregator hosts it.)
	res, err = agg.Upload(attackLabeled)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		// Acceptable alternative: the hash DB still remembers the
		// original and denies. Either way the appeal path must work.
		t.Logf("upload denied by derivative defense: %v", res.Reason)
	}

	adj, err := s.NewAdjudicator(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	orig := alice.Shoot(5, 192, 128) // deterministic: same pixels as claimed
	v, err := adj.Decide(&appeals.Complaint{
		Original:       orig,
		OriginalToken:  owned.Receipt.Timestamp,
		OriginalLedger: 1,
		Copy:           attackLabeled,
		ContestedID:    attackOwned.ID,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != appeals.Upheld {
		t.Fatalf("appeal verdict %v (%s)", v.Outcome, v.Detail)
	}
	l2, err := s.Ledger(2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l2.Status(attackOwned.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.State != ledger.StatePermanentlyRevoked {
		t.Errorf("attack claim state %v", p.State)
	}
	// And the extension now blocks the attacker's copy everywhere.
	if err := s.RefreshFilters(); err != nil {
		t.Fatal(err)
	}
	if dec := s.View(attackLabeled); dec.Display {
		t.Errorf("permanently revoked copy still displays: %+v", dec)
	}
}

func TestPersistentSystemRecovers(t *testing.T) {
	dir := t.TempDir()
	var savedID ids.PhotoID
	{
		s, err := NewSystem(Options{Ledgers: 1, DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		alice, err := s.NewOwner(1)
		if err != nil {
			t.Fatal(err)
		}
		_, owned, err := alice.ClaimAndLabel(alice.Shoot(6, 192, 128))
		if err != nil {
			t.Fatal(err)
		}
		if err := alice.Revoke(owned.ID); err != nil {
			t.Fatal(err)
		}
		savedID = owned.ID
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewSystem(Options{Ledgers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	l, err := s.Ledger(1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.Status(savedID)
	if err != nil {
		t.Fatal(err)
	}
	if p.State != ledger.StateRevoked {
		t.Errorf("recovered state %v", p.State)
	}
}

func TestBrowserResidentFilter(t *testing.T) {
	// §4.4 early-adoption option: the filter lives in the browser, so
	// not-revoked views never even reach the proxy.
	s := newSystem(t, Options{Ledgers: 1, BrowserFilter: true})
	alice, err := s.NewOwner(1)
	if err != nil {
		t.Fatal(err)
	}
	active, activeOwned, err := alice.ClaimAndLabel(alice.Shoot(40, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	_ = activeOwned
	revokedImg, revokedOwned, err := alice.ClaimAndLabel(alice.Shoot(41, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Revoke(revokedOwned.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.RefreshFilters(); err != nil {
		t.Fatal(err)
	}

	// Viewing the active photo many times must generate zero proxy
	// traffic: the browser's own filter answers.
	for i := 0; i < 20; i++ {
		if dec := s.View(active); !dec.Display {
			t.Fatalf("active view blocked: %+v", dec)
		}
	}
	if q := s.ProxyQueries(); q != 0 {
		t.Errorf("active views reached the proxy %d times; browser filter should absorb them", q)
	}
	// The revoked photo hits the browser filter and goes through the
	// proxy to a real answer.
	dec := s.View(revokedImg)
	if dec.Display {
		t.Fatalf("revoked photo displayed: %+v", dec)
	}
	if q := s.ProxyQueries(); q == 0 {
		t.Error("revoked view never reached the proxy")
	}
}

func TestViewValidationFailureDefaultDeny(t *testing.T) {
	// A labeled photo pointing at a ledger this system doesn't know:
	// validation cannot complete, so the extension must not display
	// (Goal #3's default-deny posture).
	s := newSystem(t, Options{Ledgers: 1})
	foreign, err := ids.New(42) // ledger 42 is not in the directory
	if err != nil {
		t.Fatal(err)
	}
	im := photo.Synth(50, 192, 128)
	labeled, err := camera.Label(im, foreign, "irs://ledger/42", watermark.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dec := s.View(labeled)
	if dec.Display {
		t.Fatalf("unverifiable photo displayed: %+v", dec)
	}
	if dec.ID != foreign {
		t.Errorf("decision id %v", dec.ID)
	}
}
