package parallel

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

func withWorkers(t *testing.T, n int) {
	t.Helper()
	prev := SetWorkers(n)
	t.Cleanup(func() { SetWorkers(prev) })
}

func TestDoCoversAllIndices(t *testing.T) {
	for _, w := range []int{1, 2, 8, 64} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			withWorkers(t, w)
			const n = 1000
			var hits [n]atomic.Int32
			Do(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("index %d ran %d times", i, got)
				}
			}
		})
	}
}

func TestDoEmptyAndNegative(t *testing.T) {
	withWorkers(t, 8)
	called := false
	Do(0, func(int) { called = true })
	Do(-3, func(int) { called = true })
	if called {
		t.Error("fn called for empty input")
	}
}

func TestDoWorkersExceedItems(t *testing.T) {
	withWorkers(t, 32)
	var count atomic.Int32
	Do(3, func(int) { count.Add(1) })
	if count.Load() != 3 {
		t.Errorf("ran %d of 3 items", count.Load())
	}
}

func TestDoPanicPropagates(t *testing.T) {
	for _, w := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			withWorkers(t, w)
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("panic did not propagate")
				}
				if w > 1 {
					pe, ok := r.(*PanicError)
					if !ok {
						t.Fatalf("recovered %T, want *PanicError", r)
					}
					if pe.Value != "boom" || len(pe.Stack) == 0 {
						t.Fatalf("PanicError value %v, stack %d bytes", pe.Value, len(pe.Stack))
					}
				}
			}()
			Do(100, func(i int) {
				if i == 37 {
					panic("boom")
				}
			})
		})
	}
}

func TestMapOrderPreserved(t *testing.T) {
	withWorkers(t, 8)
	in := make([]int, 500)
	for i := range in {
		in[i] = i * 3
	}
	out := Map(in, func(i, v int) int { return v + i })
	for i, v := range out {
		if v != i*4 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*4)
		}
	}
	if got := Map(nil, func(i, v int) int { return v }); len(got) != 0 {
		t.Errorf("nil input gave %d results", len(got))
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	withWorkers(t, 8)
	errLow, errHigh := errors.New("low"), errors.New("high")
	in := make([]int, 200)
	_, err := MapErr(in, func(i, _ int) (int, error) {
		switch i {
		case 190:
			return 0, errHigh
		case 11:
			return 0, errLow
		}
		return i, nil
	})
	if err != errLow {
		t.Errorf("got %v, want the lowest-index error", err)
	}
	if _, err := MapErr(in, func(i, _ int) (int, error) { return i, nil }); err != nil {
		t.Errorf("clean run errored: %v", err)
	}
}

func TestForChunksBoundaries(t *testing.T) {
	withWorkers(t, 8)
	type span struct{ chunk, lo, hi int }
	for _, tc := range []struct{ n, size, chunks int }{
		{10, 3, 4}, {9, 3, 3}, {1, 100, 1}, {5, 0, 5},
	} {
		var mu atomic.Int64
		got := make([]span, (tc.n+max(tc.size, 1)-1)/max(tc.size, 1))
		ForChunks(tc.n, tc.size, func(c, lo, hi int) {
			got[c] = span{c, lo, hi}
			mu.Add(int64(hi - lo))
		})
		if len(got) != tc.chunks {
			t.Errorf("n=%d size=%d: %d chunks, want %d", tc.n, tc.size, len(got), tc.chunks)
		}
		if mu.Load() != int64(tc.n) {
			t.Errorf("n=%d size=%d: covered %d indices", tc.n, tc.size, mu.Load())
		}
		for c := 1; c < len(got); c++ {
			if got[c].lo != got[c-1].hi {
				t.Errorf("n=%d size=%d: gap between chunk %d and %d", tc.n, tc.size, c-1, c)
			}
		}
	}
	ForChunks(0, 4, func(c, lo, hi int) { t.Error("fn called for n=0") })
}

func TestSplitSeedIndependence(t *testing.T) {
	seen := map[int64]bool{}
	for chunk := 0; chunk < 1000; chunk++ {
		s := SplitSeed(42, chunk)
		if seen[s] {
			t.Fatalf("seed collision at chunk %d", chunk)
		}
		seen[s] = true
		if s != SplitSeed(42, chunk) {
			t.Fatal("SplitSeed not deterministic")
		}
	}
	if SplitSeed(1, 0) == SplitSeed(2, 0) {
		t.Error("different run seeds collide at chunk 0")
	}
}

func TestSetWorkersRoundTrip(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if Workers() != 3 {
		t.Errorf("Workers() = %d after SetWorkers(3)", Workers())
	}
	if got := SetWorkers(0); got != 3 {
		t.Errorf("SetWorkers returned %d, want 3", got)
	}
	if Workers() < 1 {
		t.Errorf("automatic Workers() = %d", Workers())
	}
}

// TestStress hammers the pool from many configurations; run with -race
// (scripts/check.sh does) to prove the counter/waitgroup protocol is
// clean.
func TestStress(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 50; iter++ {
		w := 1 + rng.Intn(16)
		n := rng.Intn(300)
		withWorkers(t, w)
		sums := make([]int64, n)
		Do(n, func(i int) { sums[i] = int64(i) * 7 })
		var total, want int64
		for i, s := range sums {
			total += s
			want += int64(i) * 7
		}
		if total != want {
			t.Fatalf("iter %d (w=%d n=%d): sum %d want %d", iter, w, n, total, want)
		}
	}
}
