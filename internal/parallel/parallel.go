// Package parallel is the shared execution layer for the repository's
// CPU-bound hot paths: watermark block transforms, perceptual hashing,
// filter construction and probing, and the experiment loops that
// regenerate the committed tables.
//
// Design constraints, in order:
//
//  1. Determinism. EXPERIMENTS.md tables are committed, so every caller
//     must produce byte-identical output at any worker count. The
//     package enforces the two idioms that make this automatic: results
//     are written by input index (Do, Map, MapErr), and chunk
//     boundaries are a function of the input size only — never of the
//     worker count (ForChunks takes an explicit chunk size). Callers
//     that need randomness derive an independent stream per chunk with
//     SplitSeed, not per worker.
//  2. Zero dependencies. Stdlib only; the pool is a counter, a
//     WaitGroup, and GOMAXPROCS goroutines.
//  3. Honest fallback. At one worker every entry point degenerates to
//     the plain serial loop, so single-core environments pay nothing.
//
// The default worker count is GOMAXPROCS, overridable process-wide by
// the IRS_WORKERS environment variable or programmatically (tests,
// cmd/irs-bench -workers) with SetWorkers.
package parallel

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
)

// workerOverride holds a SetWorkers override; 0 means "automatic".
var workerOverride atomic.Int64

// envWorkers reads the IRS_WORKERS override once.
var envWorkers = sync.OnceValue(func() int {
	v := os.Getenv("IRS_WORKERS")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0
	}
	return n
})

// Workers returns the effective worker count: the SetWorkers override
// if set, else IRS_WORKERS if set and positive, else GOMAXPROCS.
func Workers() int {
	if n := workerOverride.Load(); n > 0 {
		return int(n)
	}
	if n := envWorkers(); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the worker count process-wide and returns the
// previous override (0 if none was set). n <= 0 clears the override.
// Tests use it to pin serial and parallel runs; restore with
// defer SetWorkers(prev).
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(workerOverride.Swap(int64(n)))
}

// PanicError wraps a panic recovered from a pool worker so the caller's
// stack sees exactly one panic with the worker's original trace
// attached.
type PanicError struct {
	// Value is the value originally passed to panic.
	Value any
	// Stack is the worker goroutine's stack at panic time.
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", p.Value, p.Stack)
}

// Do runs fn(i) for every i in [0, n) across the pool and returns when
// all calls complete. Iterations are distributed dynamically, so fn
// must not depend on which worker runs which index; writing results
// into a caller-owned slice at position i keeps output deterministic.
// A panic in any fn is re-raised on the calling goroutine as a
// *PanicError after the remaining workers drain.
func Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  *PanicError
	)
	worker := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() {
					panicked = &PanicError{Value: r, Stack: debug.Stack()}
				})
			}
		}()
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	wg.Add(w)
	for i := 0; i < w; i++ {
		go worker()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map applies fn to every element of in and returns the results in
// input order. fn receives the element index and value.
func Map[T, R any](in []T, fn func(i int, v T) R) []R {
	out := make([]R, len(in))
	Do(len(in), func(i int) {
		out[i] = fn(i, in[i])
	})
	return out
}

// MapErr is Map for fallible fn. All elements are processed; the
// returned error is the one from the lowest input index, so the
// (result, error) pair is deterministic at any worker count.
func MapErr[T, R any](in []T, fn func(i int, v T) (R, error)) ([]R, error) {
	out := make([]R, len(in))
	errs := make([]error, len(in))
	Do(len(in), func(i int) {
		out[i], errs[i] = fn(i, in[i])
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// ForChunks splits [0, n) into contiguous chunks of chunkSize (the last
// may be short) and runs fn(chunk, lo, hi) for each across the pool.
// Chunk boundaries depend only on n and chunkSize — not on the worker
// count — so per-chunk reductions combined in chunk order are
// deterministic at any parallelism. chunkSize < 1 is treated as 1.
func ForChunks(n, chunkSize int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunkSize < 1 {
		chunkSize = 1
	}
	chunks := (n + chunkSize - 1) / chunkSize
	Do(chunks, func(c int) {
		lo := c * chunkSize
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		fn(c, lo, hi)
	})
}

// SplitSeed derives an independent, deterministic seed for one chunk of
// a seeded computation (splitmix64 over the pair), so parallel loops
// can carry per-chunk rand streams whose output does not depend on the
// worker count or schedule.
func SplitSeed(seed int64, chunk int) int64 {
	x := uint64(seed) ^ (uint64(chunk)+1)*0x9e3779b97f4a7c15
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64(x ^ (x >> 31))
}
