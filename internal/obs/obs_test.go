package obs

import (
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeIntern(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("requests_total", L("route", "status"))
	b := r.Counter("requests_total", L("route", "status"))
	if a != b {
		t.Fatal("same name+labels interned to two counters")
	}
	c := r.Counter("requests_total", L("route", "claim"))
	if a == c {
		t.Fatal("distinct labels shared a counter")
	}
	a.Add(2)
	a.Inc()
	if a.Load() != 3 || c.Load() != 0 {
		t.Fatalf("counter values %d/%d, want 3/0", a.Load(), c.Load())
	}
	g := r.Gauge("depth")
	g.Set(5)
	g.Add(-2)
	if g.Load() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Load())
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", L("b", "2"), L("a", "1"))
	b := r.Counter("m", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatal("label order produced distinct series")
	}
}

func TestKindConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("m")
	r.Gauge("m")
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"ok_name":   "ok_name",
		"has space": "has_space",
		"9starts":   "_9starts",
		"":          "_",
		"a:b":       "a:b",
		"höhe":      "h__he", // each invalid byte maps to one underscore
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.001, 0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.0005) // bucket le=0.001
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.05) // bucket le=0.1
	}
	h.Observe(0.5) // bucket le=1
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Quantile(0.50); got != 0.001 {
		t.Errorf("p50 = %v, want 0.001", got)
	}
	if got := s.Quantile(0.95); got != 0.1 {
		t.Errorf("p95 = %v, want 0.1", got)
	}
	if got := s.Quantile(1.0); got != 1.0 {
		t.Errorf("p100 = %v, want 1", got)
	}
	// Overflow observations cap at the largest finite bound.
	h.Observe(math.Inf(1))
	if got := h.Quantile(1.0); got != 1.0 {
		t.Errorf("overflow quantile = %v, want capped at 1", got)
	}
}

func TestHistogramBoundsCleaning(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("m", []float64{5, math.NaN(), 1, 5, math.Inf(1)})
	h.Observe(2)
	s := h.Snapshot()
	if len(s.Bounds) != 2 || s.Bounds[0] != 1 || s.Bounds[1] != 5 {
		t.Fatalf("bounds = %v, want [1 5]", s.Bounds)
	}
	if s.Counts[1] != 1 {
		t.Fatalf("counts = %v, want the le=5 bucket hit", s.Counts)
	}
}

func TestPrometheusTextShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", L("route", "a\"b\\c\nd")).Add(7)
	r.Gauge("depth").Set(-2)
	h := r.Histogram("lat", []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(2)
	text := r.PrometheusText()
	for _, want := range []string{
		"# TYPE depth gauge\ndepth -2\n",
		"# TYPE lat histogram\n",
		`lat_bucket{le="0.5"} 1`,
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="+Inf"} 2`,
		"lat_sum 2.2\n",
		"lat_count 2\n",
		`req_total{route="a\"b\\c\nd"} 7`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	if got := strings.Count(text, "# TYPE"); got != 3 {
		t.Errorf("%d TYPE lines, want 3", got)
	}
	// Deterministic: same content renders identically.
	if text != r.PrometheusText() {
		t.Error("two renders of an unchanged registry differ")
	}
}

func TestSnapshotSortedAndValueLookup(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz").Add(1)
	r.Counter("aaa", L("x", "2")).Add(2)
	r.Counter("aaa", L("x", "1")).Add(3)
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Name != "aaa" || snap[2].Name != "zzz" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	if snap[0].Labels[0].Value != "1" {
		t.Fatalf("series order within family wrong: %+v", snap[:2])
	}
	if v, ok := Value(snap, "aaa", L("x", "2")); !ok || v != 2 {
		t.Fatalf("Value lookup = %v/%v", v, ok)
	}
	if _, ok := Value(snap, "missing"); ok {
		t.Fatal("lookup of a missing series succeeded")
	}
}

func TestHistogramUserLeLabelDropped(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", nil, L("le", "evil"), L("k", "v")).Observe(1)
	text := r.PrometheusText()
	if strings.Contains(text, `le="evil"`) {
		t.Fatalf("user le label leaked into exposition:\n%s", text)
	}
	if !strings.Contains(text, `k="v"`) {
		t.Fatalf("legitimate label lost:\n%s", text)
	}
}
