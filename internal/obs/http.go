package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry as Prometheus text — the body of
// GET /debug/metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// RegisterDebug mounts the observability surface on mux:
//
//	GET /debug/metrics  — Prometheus text for reg
//	GET /debug/traces   — text dump of tracer's retained spans (when
//	                      tracer is non-nil)
//	/debug/pprof/...    — the stdlib profiler endpoints
//
// The caller decides exposure: these endpoints reveal operational
// detail (and pprof can run CPU profiles on demand), so servers mount
// them only behind an explicit debug flag.
func RegisterDebug(mux *http.ServeMux, reg *Registry, tracer *Tracer) {
	mux.Handle("GET /debug/metrics", Handler(reg))
	if tracer != nil {
		mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			tracer.Dump(w)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
