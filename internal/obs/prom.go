package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), stdlib only.
// Families are emitted in sorted name order with exactly one # TYPE
// line each; series within a family are sorted by label key. Counters
// and gauges emit one sample line; histograms emit the cumulative
// _bucket{le=...} ladder (ending at le="+Inf"), then _sum and _count.
// Metric names are already restricted to the legal alphabet by
// registration-time sanitizing; label values are escaped here.

// escapeLabelValue applies the text-format escapes: backslash, double
// quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(v[i])
		}
	}
	return sb.String()
}

// formatFloat renders a sample value; Prometheus accepts Go's 'g'
// shortest representation, including NaN and +Inf spellings.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeLabels renders {k="v",...} including an extra le pair when
// leBound is non-empty.
func writeLabels(w *bufio.Writer, labels []Label, leBound string) {
	if len(labels) == 0 && leBound == "" {
		return
	}
	w.WriteByte('{')
	first := true
	for _, l := range labels {
		if !first {
			w.WriteByte(',')
		}
		first = false
		w.WriteString(l.Key)
		w.WriteString(`="`)
		w.WriteString(escapeLabelValue(l.Value))
		w.WriteByte('"')
	}
	if leBound != "" {
		if !first {
			w.WriteByte(',')
		}
		w.WriteString(`le="`)
		w.WriteString(leBound)
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// WritePrometheus renders the registry in the Prometheus text format.
// Output order is fully deterministic for a given registry content.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })
	for _, f := range fams {
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range f.sorted() {
			switch f.kind {
			case kindCounter:
				bw.WriteString(f.name)
				writeLabels(bw, s.labels, "")
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatUint(s.c.Load(), 10))
				bw.WriteByte('\n')
			case kindGauge:
				bw.WriteString(f.name)
				writeLabels(bw, s.labels, "")
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatInt(s.g.Load(), 10))
				bw.WriteByte('\n')
			default:
				snap := s.h.Snapshot()
				var cum uint64
				for i, c := range snap.Counts {
					cum += c
					le := "+Inf"
					if i < len(snap.Bounds) {
						le = formatFloat(snap.Bounds[i])
					}
					bw.WriteString(f.name)
					bw.WriteString("_bucket")
					writeLabels(bw, s.labels, le)
					bw.WriteByte(' ')
					bw.WriteString(strconv.FormatUint(cum, 10))
					bw.WriteByte('\n')
				}
				bw.WriteString(f.name)
				bw.WriteString("_sum")
				writeLabels(bw, s.labels, "")
				bw.WriteByte(' ')
				bw.WriteString(formatFloat(snap.Sum))
				bw.WriteByte('\n')
				bw.WriteString(f.name)
				bw.WriteString("_count")
				writeLabels(bw, s.labels, "")
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatUint(snap.Count, 10))
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}

// PrometheusText renders the registry to a string (test and bench
// convenience; the determinism checks byte-compare this).
func (r *Registry) PrometheusText() string {
	var sb strings.Builder
	_ = r.WritePrometheus(&sb)
	return sb.String()
}
