package obs

import (
	"strings"
	"testing"
	"time"
)

// scriptClock returns a clock advancing a fixed step per call.
func scriptClock(step time.Duration) func() time.Time {
	base := time.Unix(1_700_000_000, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * step)
	}
}

func TestTraceStagesAndDump(t *testing.T) {
	tr := NewTracer(8, scriptClock(time.Millisecond))
	tc := tr.Start("validate")
	tc.Stage("filter")
	tc.Notef("hit=%v", false)
	tc.Stage("cache")
	tc.Stage("upstream")
	tc.Notef("ledger=%d", 3)
	tc.End()
	tc.End() // idempotent: must not commit twice

	got := tr.Recent()
	if len(got) != 1 {
		t.Fatalf("retained %d traces, want 1", len(got))
	}
	if len(got[0].Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(got[0].Spans))
	}
	for i, s := range got[0].Spans {
		if s.End <= s.Begin {
			t.Errorf("span %d not closed: begin=%v end=%v", i, s.Begin, s.End)
		}
	}
	dump := tr.DumpString()
	for _, want := range []string{"trace 1 validate", "filter", "hit=false", "ledger=3"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestTracerRingRetention(t *testing.T) {
	frozen := func() time.Time { return time.Unix(0, 0) }
	tr := NewTracer(3, frozen)
	for i := 0; i < 5; i++ {
		tr.Start("r").End()
	}
	got := tr.Recent()
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	// Oldest-first after wrap: IDs 3,4,5.
	for i, tc := range got {
		if want := uint64(i + 3); tc.ID != want {
			t.Errorf("ring[%d].ID = %d, want %d", i, tc.ID, want)
		}
	}
}

func TestTracerDumpOrderedByID(t *testing.T) {
	frozen := func() time.Time { return time.Unix(0, 0) }
	tr := NewTracer(8, frozen)
	a := tr.Start("a")
	b := tr.Start("b")
	b.End() // completes before a — dump must still list a (ID 1) first
	a.End()
	dump := tr.DumpString()
	if strings.Index(dump, "trace 1 a") > strings.Index(dump, "trace 2 b") {
		t.Fatalf("dump not ID-ordered:\n%s", dump)
	}
}

func TestNilTracerAndTraceAreNoops(t *testing.T) {
	var tr *Tracer
	tc := tr.Start("x")
	if tc != nil {
		t.Fatal("nil tracer returned a non-nil trace")
	}
	// All of these must be safe on nil receivers.
	tc.Stage("s")
	tc.Notef("n %d", 1)
	tc.End()
	if got := tr.Recent(); got != nil {
		t.Fatalf("nil tracer Recent = %v", got)
	}
	var sb strings.Builder
	tr.Dump(&sb)
	if sb.Len() != 0 {
		t.Fatal("nil tracer dumped output")
	}
}

func TestFrozenClockDumpIsReproducible(t *testing.T) {
	run := func() string {
		frozen := func() time.Time { return time.Unix(42, 0) }
		tr := NewTracer(16, frozen)
		for i := 0; i < 4; i++ {
			tc := tr.Start("req")
			tc.Stage("cache")
			tc.Stage("upstream")
			tc.End()
		}
		return tr.DumpString()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-script runs produced different dumps:\n%s\n---\n%s", a, b)
	}
}
