// Package obs is the IRS observability layer: a dependency-free
// metrics registry (atomic counters, gauges, and fixed-bucket latency
// histograms) plus a lightweight per-request trace-span API.
//
// Design constraints, in order:
//
//   - Zero allocation on the hot path. Instruments are interned once at
//     setup time (Registry.Counter/Gauge/Histogram return the same
//     pointer for the same name+labels) and the serving code holds the
//     pointer; an increment is one atomic add, an Observe is one binary
//     search over a small fixed bucket array plus two atomic adds.
//   - No third-party dependencies. The exposition format is Prometheus
//     text (prom.go) written with the stdlib only, so any scraper —
//     or curl — can read it; the repo's north star is a self-contained
//     production system, and a metrics dependency would be the first
//     external one.
//   - Deterministic under test. Snapshots and the Prometheus text are
//     emitted in sorted series order, and every time-dependent piece
//     (histogram observations made through an injected clock, trace
//     spans through the Tracer's clock) is a pure function of that
//     clock — the chaos harness replays a seeded run twice and
//     byte-compares the rendered registry.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Series are interned per unique
// name+label-set at registration time; the hot path never touches
// label strings again.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter. Store exists for
// experiment-phase resets (the registry is also the substrate for
// Stats-style snapshots, which experiments zero between phases);
// exported Prometheus series should only ever Add.
type Counter struct{ v atomic.Uint64 }

// Add increments by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Store overwrites the value (experiment-phase reset).
func (c *Counter) Store(n uint64) { c.v.Store(n) }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set overwrites the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// kind discriminates the three instrument families.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// String implements fmt.Stringer (also the Prometheus TYPE word).
func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one interned name+labels instrument.
type series struct {
	labels []Label
	key    string // serialized sorted labels, the intern key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every series sharing a metric name; the exposition
// emits exactly one # TYPE line per family.
type family struct {
	name   string
	kind   kind
	series map[string]*series
	order  []*series // sorted by label key lazily at snapshot time
}

// Registry holds metric families. Registration takes a lock and
// allocates; reads of registered instruments are lock-free. The zero
// value is not usable — construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter interns and returns the counter series name{labels...}.
// Repeated calls with the same name and labels return the same
// *Counter. Registering an existing name as a different kind panics:
// that is a programming error, caught at setup time.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	s := r.intern(name, kindCounter, nil, labels)
	return s.c
}

// Gauge interns and returns the gauge series name{labels...}.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	s := r.intern(name, kindGauge, nil, labels)
	return s.g
}

// Histogram interns and returns the histogram series name{labels...}
// with the given bucket upper bounds (nil or empty means
// DefLatencyBuckets; non-finite bounds are dropped, the rest sorted
// and deduplicated). Bounds are fixed by the first registration of the
// family.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	s := r.intern(name, kindHistogram, bounds, labels)
	return s.h
}

// intern is the registration core.
func (r *Registry) intern(name string, k kind, bounds []float64, labels []Label) *series {
	name = SanitizeName(name)
	labels = cleanLabels(labels)
	if k == kindHistogram {
		// "le" is the bucket-bound label; a user label with that key
		// would collide with it on every _bucket line.
		kept := labels[:0]
		for _, l := range labels {
			if l.Key != "le" {
				kept = append(kept, l)
			}
		}
		labels = kept
	}
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: k, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != k {
		panic("obs: metric " + name + " registered as both " + f.kind.String() + " and " + k.String())
	}
	s, ok := f.series[key]
	if ok {
		return s
	}
	s = &series{labels: labels, key: key}
	switch k {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	default:
		s.h = newHistogram(bounds)
	}
	f.series[key] = s
	f.order = append(f.order, s)
	return s
}

// cleanLabels sanitizes keys, sorts by key, and drops duplicate keys
// (first occurrence in sorted order wins), so a label set has exactly
// one canonical serialization.
func cleanLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, 0, len(labels))
	for _, l := range labels {
		out = append(out, Label{Key: SanitizeName(l.Key), Value: l.Value})
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	dedup := out[:1]
	for _, l := range out[1:] {
		if l.Key != dedup[len(dedup)-1].Key {
			dedup = append(dedup, l)
		}
	}
	return dedup
}

// labelKey serializes a cleaned label set into the intern key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte(',')
	}
	return sb.String()
}

// SanitizeName maps an arbitrary string onto the Prometheus metric
// name alphabet [a-zA-Z0-9_:] with a non-digit first character.
// Sanitizing at registration (rather than exposition) means two
// spellings that collide become one series instead of two series with
// one name — the exposition can never emit duplicates.
func SanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var sb strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9')
		if c >= '0' && c <= '9' && i == 0 {
			sb.WriteByte('_') // digit may not lead; keep it, prefixed
		}
		if ok {
			sb.WriteByte(c)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// SeriesSnapshot is one series' point-in-time value, JSON-marshalable
// for bench reports.
type SeriesSnapshot struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Labels []Label `json:"labels,omitempty"`
	// Value carries counter and gauge readings.
	Value float64 `json:"value"`
	// Histogram summary (Count/Sum plus the three serving quantiles).
	Count uint64  `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P95   float64 `json:"p95,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// Snapshot returns every series' current value, sorted by family name
// then label key — a deterministic ordering, so two registries with
// identical contents snapshot identically.
func (r *Registry) Snapshot() []SeriesSnapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })
	var out []SeriesSnapshot
	for _, f := range fams {
		for _, s := range f.sorted() {
			ss := SeriesSnapshot{Name: f.name, Kind: f.kind.String(), Labels: s.labels}
			switch f.kind {
			case kindCounter:
				ss.Value = float64(s.c.Load())
			case kindGauge:
				ss.Value = float64(s.g.Load())
			default:
				h := s.h.Snapshot()
				ss.Count = h.Count
				ss.Sum = h.Sum
				ss.P50 = h.Quantile(0.50)
				ss.P95 = h.Quantile(0.95)
				ss.P99 = h.Quantile(0.99)
			}
			out = append(out, ss)
		}
	}
	return out
}

// sorted returns the family's series ordered by label key. The sort is
// recomputed per call; families are small and snapshots are off the
// hot path.
func (f *family) sorted() []*series {
	out := append([]*series(nil), f.order...)
	sort.Slice(out, func(a, b int) bool { return out[a].key < out[b].key })
	return out
}

// Value finds a counter or gauge reading in a snapshot; the helper the
// bench harnesses use to print headline series.
func Value(snap []SeriesSnapshot, name string, labels ...Label) (float64, bool) {
	name = SanitizeName(name)
	want := labelKey(cleanLabels(labels))
	for _, s := range snap {
		if s.Name == name && labelKey(s.Labels) == want {
			return s.Value, true
		}
	}
	return 0, false
}

// Hist finds a histogram summary in a snapshot.
func Hist(snap []SeriesSnapshot, name string, labels ...Label) (SeriesSnapshot, bool) {
	name = SanitizeName(name)
	want := labelKey(cleanLabels(labels))
	for _, s := range snap {
		if s.Name == name && s.Kind == "histogram" && labelKey(s.Labels) == want {
			return s, true
		}
	}
	return SeriesSnapshot{}, false
}
