package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefLatencyBuckets is the default bucket ladder for request-latency
// histograms, in seconds: 50µs to 10s, roughly ×2.5 per step. The
// serving path's interesting band (loopback HTTP round trips, hundreds
// of µs to a few ms) gets the densest coverage.
var DefLatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25,
	0.5, 1, 2.5, 10,
}

// Histogram is a fixed-bucket histogram. Observe is wait-free apart
// from one CAS loop maintaining the float64 sum; bucket boundaries are
// immutable after construction, so there is no resizing and no lock.
type Histogram struct {
	bounds  []float64 // strictly increasing, finite; +Inf is implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// newHistogram builds a histogram over the given upper bounds,
// dropping non-finite values, sorting, and deduplicating. Empty (after
// cleaning) means DefLatencyBuckets.
func newHistogram(bounds []float64) *Histogram {
	clean := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsNaN(b) && !math.IsInf(b, 0) {
			clean = append(clean, b)
		}
	}
	sort.Float64s(clean)
	n := 0
	for i, b := range clean {
		if i == 0 || b != clean[n-1] {
			clean[n] = b
			n++
		}
	}
	clean = clean[:n]
	if len(clean) == 0 {
		clean = DefLatencyBuckets
	}
	return &Histogram{
		bounds: append([]float64(nil), clean...),
		counts: make([]atomic.Uint64, len(clean)+1),
	}
}

// Observe records one value. Any float64 is accepted: NaN and +Inf
// land in the overflow bucket (every le comparison fails), -Inf in the
// first; the fuzz harness feeds arbitrary bit patterns through here.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v — the Prometheus
	// cumulative "le" bucket v belongs to. NaN fails every comparison
	// and falls through to the +Inf overflow slot.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// HistSnapshot is a point-in-time histogram copy.
type HistSnapshot struct {
	// Bounds are the finite bucket upper bounds; Counts has one extra
	// trailing element, the +Inf overflow bucket. Counts are per bucket
	// (not cumulative).
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the current bucket counts. Buckets are read one
// atomic load at a time, so a snapshot racing observations may be off
// by in-flight increments; Count is read first and therefore never
// exceeds the bucket sum by more than the in-flight window.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the p-quantile (0 < p <= 1) from the bucket
// counts: the upper bound of the bucket containing the nearest-rank
// observation (the same ceil convention as netsim.Quantile). Overflow
// observations report the largest finite bound. Returns 0 for an empty
// histogram. Estimates are monotone in p by construction.
func (s HistSnapshot) Quantile(p float64) float64 {
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Bounds[len(s.Bounds)-1]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Quantile is the instrument-side convenience wrapper.
func (h *Histogram) Quantile(p float64) float64 { return h.Snapshot().Quantile(p) }
