package obs

import (
	"encoding/binary"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// The fuzz targets attack the two trust boundaries of the package: the
// Prometheus exposition (consumed by external scrapers, so it must be
// well-formed for every registry content) and Histogram.Observe
// (fed raw float64 bit patterns from the serving path).

// validatePromText is a small, strict parser for the text format the
// registry emits. It checks: every line is a TYPE comment or a sample;
// exactly one # TYPE per family, appearing before that family's
// samples; metric and label names match the legal alphabet; label
// values use only the three legal escapes; no duplicate series; and
// histogram families have a cumulative non-decreasing bucket ladder
// ending at le="+Inf" whose value equals _count.
func validatePromText(text string) error {
	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	type histAgg struct {
		buckets map[string][]struct{ le, v float64 }
		sums    map[string]bool
		counts  map[string]float64
	}
	fams := map[string]string{} // family name -> kind
	hists := map[string]*histAgg{}
	seen := map[string]bool{} // duplicate-series detection

	canonical := func(name string, labels []Label) string {
		ls := append([]Label(nil), labels...)
		sort.Slice(ls, func(a, b int) bool { return ls[a].Key < ls[b].Key })
		var sb strings.Builder
		sb.WriteString(name)
		for _, l := range ls {
			sb.WriteString("|")
			sb.WriteString(l.Key)
			sb.WriteString("=")
			sb.WriteString(l.Value)
		}
		return sb.String()
	}

	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.Split(line, " ")
			if len(parts) != 4 || parts[0] != "#" || parts[1] != "TYPE" {
				return fmt.Errorf("line %d: malformed comment %q", ln, line)
			}
			name, kindWord := parts[2], parts[3]
			if !nameRe.MatchString(name) {
				return fmt.Errorf("line %d: bad family name %q", ln, name)
			}
			if kindWord != "counter" && kindWord != "gauge" && kindWord != "histogram" {
				return fmt.Errorf("line %d: bad kind %q", ln, kindWord)
			}
			if _, dup := fams[name]; dup {
				return fmt.Errorf("line %d: duplicate # TYPE for %q", ln, name)
			}
			fams[name] = kindWord
			if kindWord == "histogram" {
				hists[name] = &histAgg{
					buckets: map[string][]struct{ le, v float64 }{},
					sums:    map[string]bool{},
					counts:  map[string]float64{},
				}
			}
			continue
		}

		name, labels, val, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", ln, err)
		}
		if !nameRe.MatchString(name) {
			return fmt.Errorf("line %d: bad sample name %q", ln, name)
		}
		for _, l := range labels {
			if !nameRe.MatchString(l.Key) {
				return fmt.Errorf("line %d: bad label name %q", ln, l.Key)
			}
		}
		key := canonical(name, labels)
		if seen[key] {
			return fmt.Errorf("line %d: duplicate series %q", ln, key)
		}
		seen[key] = true

		// Associate the sample with its declared family.
		if k, ok := fams[name]; ok {
			if k == "histogram" {
				return fmt.Errorf("line %d: bare sample %q for a histogram family", ln, name)
			}
			if k == "counter" && (val < 0 || val != math.Trunc(val)) {
				return fmt.Errorf("line %d: counter %q has non-integer value %v", ln, name, val)
			}
			continue
		}
		matched := false
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base == name {
				continue
			}
			agg, ok := hists[base]
			if !ok {
				continue
			}
			matched = true
			rest := labels[:0:0]
			var le float64
			hasLE := false
			for _, l := range labels {
				if suf == "_bucket" && l.Key == "le" {
					le, err = strconv.ParseFloat(l.Value, 64)
					if err != nil {
						return fmt.Errorf("line %d: bad le %q: %v", ln, l.Value, err)
					}
					hasLE = true
					continue
				}
				rest = append(rest, l)
			}
			bk := canonical(base, rest)
			switch suf {
			case "_bucket":
				if !hasLE {
					return fmt.Errorf("line %d: bucket sample without le", ln)
				}
				agg.buckets[bk] = append(agg.buckets[bk], struct{ le, v float64 }{le, val})
			case "_sum":
				agg.sums[bk] = true
			case "_count":
				agg.counts[bk] = val
			}
			break
		}
		if !matched {
			return fmt.Errorf("line %d: sample %q has no declared family", ln, name)
		}
	}

	for fam, agg := range hists {
		for bk, buckets := range agg.buckets {
			sort.Slice(buckets, func(a, b int) bool { return buckets[a].le < buckets[b].le })
			last := math.Inf(-1)
			prev := -1.0
			for _, b := range buckets {
				if b.v < prev {
					return fmt.Errorf("family %s series %s: bucket ladder not cumulative", fam, bk)
				}
				prev = b.v
				last = b.le
			}
			if !math.IsInf(last, 1) {
				return fmt.Errorf("family %s series %s: no le=\"+Inf\" bucket", fam, bk)
			}
			cnt, ok := agg.counts[bk]
			if !ok {
				return fmt.Errorf("family %s series %s: missing _count", fam, bk)
			}
			if cnt != buckets[len(buckets)-1].v {
				return fmt.Errorf("family %s series %s: _count %v != +Inf bucket %v",
					fam, bk, cnt, buckets[len(buckets)-1].v)
			}
			if !agg.sums[bk] {
				return fmt.Errorf("family %s series %s: missing _sum", fam, bk)
			}
		}
		for bk := range agg.counts {
			if _, ok := agg.buckets[bk]; !ok {
				return fmt.Errorf("family %s series %s: _count without buckets", fam, bk)
			}
		}
		for bk := range agg.sums {
			if _, ok := agg.buckets[bk]; !ok {
				return fmt.Errorf("family %s series %s: _sum without buckets", fam, bk)
			}
		}
	}
	return nil
}

// parseSampleLine parses `name[{labels}] value`.
func parseSampleLine(line string) (string, []Label, float64, error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("no separator in %q", line)
	}
	name := line[:i]
	var labels []Label
	pos := i
	if line[pos] == '{' {
		pos++
		for {
			if pos >= len(line) {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if line[pos] == '}' {
				pos++
				break
			}
			eq := strings.IndexByte(line[pos:], '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("label without '=' in %q", line)
			}
			key := line[pos : pos+eq]
			pos += eq + 1
			if pos >= len(line) || line[pos] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			pos++
			var val strings.Builder
			closed := false
			for pos < len(line) {
				c := line[pos]
				if c == '\\' {
					pos++
					if pos >= len(line) {
						return "", nil, 0, fmt.Errorf("dangling escape in %q", line)
					}
					switch line[pos] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, 0, fmt.Errorf("illegal escape \\%c in %q", line[pos], line)
					}
					pos++
					continue
				}
				if c == '"' {
					pos++
					closed = true
					break
				}
				val.WriteByte(c)
				pos++
			}
			if !closed {
				return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
			}
			labels = append(labels, Label{Key: key, Value: val.String()})
			if pos < len(line) && line[pos] == ',' {
				pos++
			}
		}
	}
	if pos >= len(line) || line[pos] != ' ' {
		return "", nil, 0, fmt.Errorf("missing value separator in %q", line)
	}
	v, err := strconv.ParseFloat(line[pos+1:], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value in %q: %v", line, err)
	}
	return name, labels, v, nil
}

// FuzzPrometheusText drives arbitrary registry construction (names,
// labels, kinds, bucket bounds, and values all from the fuzz input) and
// asserts the rendered exposition always satisfies validatePromText.
func FuzzPrometheusText(f *testing.F) {
	f.Add([]byte("\x00\x03req\x01\x01a\x02bc\x07"))
	f.Add([]byte("\x02\x04late\x00\x02\x10\x40\x03\x05\x50\x90"))
	f.Add([]byte("\x01\x05depth\x02\x02id\x017\x01k\x00\x42"))
	f.Add([]byte{2, 1, 'h', 0, 0, 3, 1, 2, 3, 0, 1, 'h', 1, 1, 'h', 2, 1, 'h', 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		pos := 0
		readByte := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		readStr := func() string {
			n := int(readByte()) % 8
			end := pos + n
			if end > len(data) {
				end = len(data)
			}
			s := string(data[pos:end])
			pos = end
			return s
		}

		r := NewRegistry()
		declared := map[string]byte{} // sanitized family name -> kind byte
		occupied := map[string]bool{} // every name some family emits lines under
		for ops := 0; ops < 24 && pos < len(data); ops++ {
			k := readByte() % 3
			name := SanitizeName(readStr())
			emits := []string{name}
			if k == 2 {
				emits = []string{name + "_bucket", name + "_sum", name + "_count"}
			}
			if prev, ok := declared[name]; ok {
				if prev != k {
					continue // would panic by design; not what this fuzz probes
				}
			} else {
				// A new family's TYPE name and sample names must not
				// collide with any name already in use (e.g. a counter
				// literally named x_bucket vs histogram x).
				conflict := occupied[name]
				for _, e := range emits {
					if occupied[e] {
						conflict = true
					}
					if _, ok := declared[e]; ok {
						conflict = true
					}
				}
				if conflict {
					continue
				}
				declared[name] = k
				occupied[name] = true
				for _, e := range emits {
					occupied[e] = true
				}
			}
			var labels []Label
			for i := 0; i < int(readByte())%3; i++ {
				labels = append(labels, L(readStr(), readStr()))
			}
			switch k {
			case 0:
				r.Counter(name, labels...).Add(uint64(readByte()))
			case 1:
				r.Gauge(name, labels...).Set(int64(readByte()) - 128)
			case 2:
				var bounds []float64
				for i := 0; i < int(readByte())%4; i++ {
					bounds = append(bounds, float64(int(readByte())-100)/7)
				}
				h := r.Histogram(name, bounds, labels...)
				for i := 0; i < int(readByte())%5; i++ {
					h.Observe(float64(int(readByte())-100) / 3)
				}
			}
		}
		text := r.PrometheusText()
		if err := validatePromText(text); err != nil {
			t.Fatalf("invalid exposition: %v\n%s", err, text)
		}
	})
}

// FuzzHistogramObserve feeds arbitrary float64 bit patterns (including
// NaN, ±Inf, subnormals) through Observe and checks the structural
// invariants: no panic, bucket counts sum to the observation total, and
// quantile estimates are monotone in p.
func FuzzHistogramObserve(f *testing.F) {
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0xf0, 0x3f, 0, 0, 0, 0, 0, 0, 0, 0x40,
		0, 0, 0, 0, 0, 0, 0xf8, 0x7f})
	f.Add([]byte{0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xef, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		nb := 0
		if len(data) > 0 {
			nb = int(data[0]) % 5
			data = data[1:]
		}
		var vals []float64
		for len(data) >= 8 {
			vals = append(vals, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
			data = data[8:]
		}
		if nb > len(vals) {
			nb = len(vals)
		}
		bounds, observations := vals[:nb], vals[nb:]

		r := NewRegistry()
		h := r.Histogram("fuzz_seconds", bounds)
		for _, v := range observations {
			h.Observe(v)
		}
		s := h.Snapshot()
		var total uint64
		for _, c := range s.Counts {
			total += c
		}
		if total != uint64(len(observations)) || s.Count != uint64(len(observations)) {
			t.Fatalf("bucket sum %d / count %d, want %d observations",
				total, s.Count, len(observations))
		}
		p50, p95, p99 := s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99)
		if p50 > p95 || p95 > p99 {
			t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
		}
		if err := validatePromText(r.PrometheusText()); err != nil {
			t.Fatalf("exposition after fuzz observations invalid: %v", err)
		}
	})
}
