package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracer records per-request stage spans into a fixed ring buffer.
// Time comes exclusively from the injected clock, so a run driven by a
// frozen or scripted clock produces byte-identical dumps — the
// determinism contract the chaos harness checks. A nil *Tracer is the
// disabled state: Start returns a nil *Trace whose methods are all
// no-ops, so call sites need no branches.
//
// A Trace is built by one request goroutine (Stage/Notef/End are not
// synchronized); the Tracer itself is safe for concurrent use — Start
// and End take the ring lock.
type Tracer struct {
	clock func() time.Time
	cap   int

	mu    sync.Mutex
	ring  []*Trace // completed traces, oldest first once wrapped
	next  int      // ring write position
	total uint64   // traces started, also the ID source
}

// NewTracer creates a tracer retaining the last capacity completed
// traces (capacity <= 0 means 256). clock nil means time.Now;
// experiments inject seeded or frozen clocks.
func NewTracer(capacity int, clock func() time.Time) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	if clock == nil {
		clock = time.Now
	}
	return &Tracer{clock: clock, cap: capacity, ring: make([]*Trace, 0, capacity)}
}

// Span is one named stage of a request.
type Span struct {
	Stage string
	// Begin and End are offsets from the trace start (stable under a
	// frozen clock, and what the text dump prints).
	Begin, End time.Duration
	Note       string
}

// Trace is one request's span record. Built by a single goroutine;
// immutable after End.
type Trace struct {
	tr    *Tracer
	ID    uint64
	Name  string
	Start time.Time
	Total time.Duration
	Spans []Span
	open  bool // a span is currently open
}

// Start begins a new trace. On a nil Tracer it returns nil, and every
// *Trace method tolerates a nil receiver.
func (tr *Tracer) Start(name string) *Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	tr.total++
	id := tr.total
	tr.mu.Unlock()
	return &Trace{tr: tr, ID: id, Name: name, Start: tr.clock()}
}

// Stage closes the open span (if any) and opens a new one.
func (t *Trace) Stage(stage string) {
	if t == nil {
		return
	}
	now := t.tr.clock().Sub(t.Start)
	t.closeSpan(now)
	t.Spans = append(t.Spans, Span{Stage: stage, Begin: now})
	t.open = true
}

// Notef annotates the open span.
func (t *Trace) Notef(format string, args ...any) {
	if t == nil || !t.open {
		return
	}
	s := &t.Spans[len(t.Spans)-1]
	if s.Note != "" {
		s.Note += " "
	}
	s.Note += fmt.Sprintf(format, args...)
}

// closeSpan stamps the open span's end offset.
func (t *Trace) closeSpan(now time.Duration) {
	if t.open {
		t.Spans[len(t.Spans)-1].End = now
		t.open = false
	}
}

// End closes the trace and commits it to the tracer's ring. Calling
// End twice commits once (the second call is ignored).
func (t *Trace) End() {
	if t == nil || t.tr == nil {
		return
	}
	now := t.tr.clock().Sub(t.Start)
	t.closeSpan(now)
	t.Total = now
	tr := t.tr
	t.tr = nil
	tr.mu.Lock()
	if len(tr.ring) < tr.cap {
		tr.ring = append(tr.ring, t)
	} else {
		tr.ring[tr.next] = t
	}
	tr.next = (tr.next + 1) % tr.cap
	tr.mu.Unlock()
}

// Recent returns the retained traces, most recently completed last.
func (tr *Tracer) Recent() []*Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]*Trace, 0, len(tr.ring))
	if len(tr.ring) < tr.cap {
		out = append(out, tr.ring...)
	} else {
		out = append(out, tr.ring[tr.next:]...)
		out = append(out, tr.ring[:tr.next]...)
	}
	return out
}

// Dump writes the retained traces as text, ordered by trace ID (the
// ring's completion order can depend on goroutine scheduling; the ID
// order is the request-start order, which a seeded run reproduces).
func (tr *Tracer) Dump(w io.Writer) {
	if tr == nil {
		return
	}
	traces := tr.Recent()
	sort.Slice(traces, func(a, b int) bool { return traces[a].ID < traces[b].ID })
	for _, t := range traces {
		fmt.Fprintf(w, "trace %d %s total=%s spans=%d\n", t.ID, t.Name, t.Total, len(t.Spans))
		for _, s := range t.Spans {
			fmt.Fprintf(w, "  %-10s %12s..%-12s", s.Stage, s.Begin, s.End)
			if s.Note != "" {
				fmt.Fprintf(w, " %s", s.Note)
			}
			fmt.Fprintln(w)
		}
	}
}

// DumpString renders Dump to a string.
func (tr *Tracer) DumpString() string {
	var sb strings.Builder
	tr.Dump(&sb)
	return sb.String()
}
