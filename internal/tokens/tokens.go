// Package tokens implements anonymous claim payment — the paper's
// answer to the question of whether *claiming* a photo leaks the
// owner's identity (§3.2):
//
//	"Some ledger implementations, however, might store payment
//	information in a way that allows such an association to be made; a
//	privacy-focused ledger could use a payment system that intentionally
//	makes such an association difficult even if their database is leaked
//	(e.g., a payment system where an owner buys tokens which are
//	exchanged with other users in a mixing market before being used to
//	pay for claims)."
//
// Exactly that scheme is implemented:
//
//   - An Issuer (the ledger's payment service) sells bearer tokens:
//     random serials signed with Ed25519. The issuer necessarily learns
//     buyer ↔ serial at sale time — that is the linkage to break.
//   - A Market mixes tokens: participants deposit tokens of the same
//     denomination; each mixing round reassigns them by a uniform
//     random permutation. After a round, the issuer's sale records no
//     longer predict who holds which serial.
//   - At claim time the owner redeems any valid unspent token. The
//     issuer can verify validity and prevent double-spends without
//     learning anything except "someone who once bought (or traded
//     for) a token is claiming".
//
// The unlinkability achieved is mixing-set anonymity (like coin
// tumblers), not cryptographic blindness: the issuer's posterior over
// "which buyer is claiming" is uniform over the mixing participants.
// The tests quantify this directly.
package tokens

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"sync"
)

// Token is a signed bearer instrument. Whoever holds a valid unspent
// token can pay for one claim.
type Token struct {
	// Serial is the 16-byte random identifier.
	Serial [16]byte
	// Sig is the issuer's Ed25519 signature over "irs-token-v1:"∥serial.
	Sig []byte
}

func tokenMsg(serial [16]byte) []byte {
	msg := make([]byte, 0, 13+16)
	msg = append(msg, "irs-token-v1:"...)
	msg = append(msg, serial[:]...)
	return msg
}

// Issuer sells, verifies, and redeems tokens. Safe for concurrent use.
type Issuer struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey

	mu sync.Mutex
	// sales is the linkage the mixing market defeats: serial → buyer.
	// Kept deliberately, modeling a ledger whose database leaks (§3.2).
	sales map[[16]byte]string
	spent map[[16]byte]bool
}

// NewIssuer creates an issuer with a fresh signing key.
func NewIssuer() (*Issuer, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("tokens: keygen: %w", err)
	}
	return &Issuer{
		pub:   pub,
		priv:  priv,
		sales: make(map[[16]byte]string),
		spent: make(map[[16]byte]bool),
	}, nil
}

// PublicKey returns the verification key.
func (i *Issuer) PublicKey() ed25519.PublicKey { return i.pub }

// Sell issues a token to the named buyer (the identity the payment rail
// inevitably reveals: card number, invoice, etc.).
func (i *Issuer) Sell(buyer string) (*Token, error) {
	var t Token
	if _, err := rand.Read(t.Serial[:]); err != nil {
		return nil, fmt.Errorf("tokens: serial: %w", err)
	}
	t.Sig = ed25519.Sign(i.priv, tokenMsg(t.Serial))
	i.mu.Lock()
	i.sales[t.Serial] = buyer
	i.mu.Unlock()
	return &t, nil
}

// Verify checks a token's signature without consuming it.
func Verify(pub ed25519.PublicKey, t *Token) bool {
	return ed25519.Verify(pub, tokenMsg(t.Serial), t.Sig)
}

// Redemption errors.
var (
	ErrBadToken    = errors.New("tokens: invalid token signature")
	ErrDoubleSpend = errors.New("tokens: token already spent")
)

// Redeem consumes a token. The caller presents no identity; the issuer
// learns only that some token it once sold is being spent.
func (i *Issuer) Redeem(t *Token) error {
	if !Verify(i.pub, t) {
		return ErrBadToken
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.spent[t.Serial] {
		return ErrDoubleSpend
	}
	i.spent[t.Serial] = true
	return nil
}

// SoldTo exposes the issuer's sale record — the adversarial view the
// tests use to quantify unlinkability ("even if their database is
// leaked").
func (i *Issuer) SoldTo(serial [16]byte) (string, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	b, ok := i.sales[serial]
	return b, ok
}

// Market is a mixing market round: participants deposit one token each
// and receive a uniformly random other participant's token. Multiple
// rounds compose. Not safe for concurrent use during Mix.
type Market struct {
	mu       sync.Mutex
	deposits []deposit
}

type deposit struct {
	participant string
	token       *Token
}

// NewMarket creates an empty market.
func NewMarket() *Market { return &Market{} }

// Deposit enters a token into the current round.
func (m *Market) Deposit(participant string, t *Token) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deposits = append(m.deposits, deposit{participant, t})
}

// Pending reports the number of deposited tokens.
func (m *Market) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.deposits)
}

// Mix permutes deposited tokens uniformly (Fisher–Yates over
// crypto/rand) and returns each participant's new token. The market
// clears afterwards. At least two participants are required; a mix of
// one would be a no-op that provides no anonymity.
func (m *Market) Mix() (map[string]*Token, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.deposits)
	if n < 2 {
		return nil, fmt.Errorf("tokens: mixing needs ≥2 participants, have %d", n)
	}
	tokensIn := make([]*Token, n)
	for idx, d := range m.deposits {
		tokensIn[idx] = d.token
	}
	// Fisher–Yates with crypto-quality randomness: the permutation is
	// the anonymity.
	for idx := n - 1; idx > 0; idx-- {
		jBig, err := rand.Int(rand.Reader, big.NewInt(int64(idx+1)))
		if err != nil {
			return nil, fmt.Errorf("tokens: mixing randomness: %w", err)
		}
		j := int(jBig.Int64())
		tokensIn[idx], tokensIn[j] = tokensIn[j], tokensIn[idx]
	}
	out := make(map[string]*Token, n)
	for idx, d := range m.deposits {
		out[d.participant] = tokensIn[idx]
	}
	m.deposits = nil
	return out, nil
}

// DerangedFraction reports, for a completed mix assignment, the
// fraction of participants who did NOT get their own token back —
// diagnostics for the anonymity tests.
func DerangedFraction(before map[string]*Token, after map[string]*Token) float64 {
	if len(before) == 0 {
		return 0
	}
	moved := 0
	for p, t := range after {
		if before[p] == nil || before[p].Serial != t.Serial {
			moved++
		}
	}
	return float64(moved) / float64(len(before))
}

// SerialUint64 folds a serial for histogramming in tests.
func SerialUint64(s [16]byte) uint64 { return binary.BigEndian.Uint64(s[:8]) }
