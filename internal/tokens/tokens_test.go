package tokens

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"testing"
)

func TestSellVerifyRedeem(t *testing.T) {
	iss, err := NewIssuer()
	if err != nil {
		t.Fatal(err)
	}
	tok, err := iss.Sell("alice")
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(iss.PublicKey(), tok) {
		t.Fatal("fresh token fails verification")
	}
	if err := iss.Redeem(tok); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleSpendRejected(t *testing.T) {
	iss, err := NewIssuer()
	if err != nil {
		t.Fatal(err)
	}
	tok, err := iss.Sell("alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := iss.Redeem(tok); err != nil {
		t.Fatal(err)
	}
	if err := iss.Redeem(tok); err != ErrDoubleSpend {
		t.Errorf("got %v, want ErrDoubleSpend", err)
	}
}

func TestForgedTokenRejected(t *testing.T) {
	iss, err := NewIssuer()
	if err != nil {
		t.Fatal(err)
	}
	// Self-signed token from a non-issuer key.
	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var forged Token
	if _, err := rand.Read(forged.Serial[:]); err != nil {
		t.Fatal(err)
	}
	forged.Sig = ed25519.Sign(priv, tokenMsg(forged.Serial))
	if err := iss.Redeem(&forged); err != ErrBadToken {
		t.Errorf("got %v, want ErrBadToken", err)
	}
	// Tampered serial on a real token.
	tok, err := iss.Sell("alice")
	if err != nil {
		t.Fatal(err)
	}
	tok.Serial[0] ^= 1
	if err := iss.Redeem(tok); err != ErrBadToken {
		t.Errorf("tampered: got %v, want ErrBadToken", err)
	}
}

func TestMarketNeedsTwo(t *testing.T) {
	iss, err := NewIssuer()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMarket()
	if _, err := m.Mix(); err == nil {
		t.Error("empty mix accepted")
	}
	tok, err := iss.Sell("alice")
	if err != nil {
		t.Fatal(err)
	}
	m.Deposit("alice", tok)
	if _, err := m.Mix(); err == nil {
		t.Error("single-participant mix accepted — provides no anonymity")
	}
}

func TestMixPreservesTokens(t *testing.T) {
	iss, err := NewIssuer()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMarket()
	before := map[string]*Token{}
	serials := map[[16]byte]bool{}
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("user%d", i)
		tok, err := iss.Sell(name)
		if err != nil {
			t.Fatal(err)
		}
		before[name] = tok
		serials[tok.Serial] = true
		m.Deposit(name, tok)
	}
	after, err := m.Mix()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 20 {
		t.Fatalf("mix returned %d tokens", len(after))
	}
	seen := map[[16]byte]bool{}
	for _, tok := range after {
		if !serials[tok.Serial] {
			t.Fatal("mix invented a token")
		}
		if seen[tok.Serial] {
			t.Fatal("mix duplicated a token")
		}
		seen[tok.Serial] = true
		if !Verify(iss.PublicKey(), tok) {
			t.Fatal("mixed token fails verification")
		}
	}
	if m.Pending() != 0 {
		t.Error("market not cleared after mix")
	}
}

func TestMixBreaksSaleLinkage(t *testing.T) {
	// The adversarial experiment from §3.2: the issuer's database leaks.
	// Before mixing, the sale record identifies every redeemer. After
	// one mixing round over n participants, the record's predictions are
	// right only ~1/n of the time.
	iss, err := NewIssuer()
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	const trials = 40
	totalCorrect := 0
	for trial := 0; trial < trials; trial++ {
		m := NewMarket()
		before := map[string]*Token{}
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("u%d-%d", trial, i)
			tok, err := iss.Sell(name)
			if err != nil {
				t.Fatal(err)
			}
			before[name] = tok
			m.Deposit(name, tok)
		}
		after, err := m.Mix()
		if err != nil {
			t.Fatal(err)
		}
		// The leaked database's guess: serial → original buyer.
		for holder, tok := range after {
			buyer, ok := iss.SoldTo(tok.Serial)
			if !ok {
				t.Fatal("sale record missing")
			}
			if buyer == holder {
				totalCorrect++
			}
		}
	}
	rate := float64(totalCorrect) / float64(n*trials)
	// A uniform permutation gives E[fixed points] = 1 regardless of n,
	// i.e. rate ≈ 1/n = 2%. Allow generous sampling slack.
	if rate > 0.08 {
		t.Errorf("sale record still identifies %.1f%% of holders after mixing; want ~%.0f%%",
			rate*100, 100.0/n)
	}
}

func TestMixedTokensStillRedeemOnce(t *testing.T) {
	iss, err := NewIssuer()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMarket()
	for i := 0; i < 10; i++ {
		tok, err := iss.Sell(fmt.Sprintf("user%d", i))
		if err != nil {
			t.Fatal(err)
		}
		m.Deposit(fmt.Sprintf("user%d", i), tok)
	}
	after, err := m.Mix()
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range after {
		if err := iss.Redeem(tok); err != nil {
			t.Fatalf("mixed token redemption: %v", err)
		}
	}
	for _, tok := range after {
		if err := iss.Redeem(tok); err != ErrDoubleSpend {
			t.Fatalf("second redemption: %v", err)
		}
	}
}

func TestDerangedFraction(t *testing.T) {
	iss, err := NewIssuer()
	if err != nil {
		t.Fatal(err)
	}
	a, err := iss.Sell("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := iss.Sell("b")
	if err != nil {
		t.Fatal(err)
	}
	before := map[string]*Token{"a": a, "b": b}
	same := map[string]*Token{"a": a, "b": b}
	swapped := map[string]*Token{"a": b, "b": a}
	if DerangedFraction(before, same) != 0 {
		t.Error("identity mapping should be 0 deranged")
	}
	if DerangedFraction(before, swapped) != 1 {
		t.Error("full swap should be 1 deranged")
	}
	if DerangedFraction(nil, nil) != 0 {
		t.Error("empty should be 0")
	}
}

func BenchmarkSell(b *testing.B) {
	iss, err := NewIssuer()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := iss.Sell("bench"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMix100(b *testing.B) {
	iss, err := NewIssuer()
	if err != nil {
		b.Fatal(err)
	}
	toks := make([]*Token, 100)
	for i := range toks {
		toks[i], err = iss.Sell("bench")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMarket()
		for j, tok := range toks {
			m.Deposit(fmt.Sprintf("u%d", j), tok)
		}
		if _, err := m.Mix(); err != nil {
			b.Fatal(err)
		}
	}
}
