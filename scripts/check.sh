#!/bin/sh
# Repository check gate: formatting, vet, and the full test suite under
# the race detector. The parallel layer's determinism tests run at
# several worker counts regardless of the host's core count, so a pass
# here covers single-core CI machines too.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l cmd internal bench_test.go doc.go examples 2>/dev/null || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go test -race ./...

# Fault-injection and degradation paths re-run under the race detector
# explicitly (they are the newest concurrency surface; -race ./... above
# already covers them, this names them so a failure is legible).
go test -race -run 'Faulty|Retry|Breaker|Degrade|FailOpen|FailClosed|WAL|Directory|Reuse' \
    ./internal/netsim ./internal/wire ./internal/proxy ./internal/ledger

# The derivative-lookup index's lock-free snapshot scheme and its
# linear-equivalence proof, named for the same reason.
go test -race -run 'IndexConcurrentUploadLookupTakeDown|IndexedLinearDifferential|LookupHashFirstMatch|ClearsHashDB' \
    ./internal/aggregator

# Upload pipeline: ordered-commit determinism against the serial path,
# cancellation drain, poisoned-item isolation, and the bounded status
# stage (fault parity, k-way concurrency, deadline), named under -race.
go test -race -run 'PipelineDecisionsMatchSerial|PipelineCancellationDrains|PipelinePoisonedItem|PipelineStatus|VideoUploadWorkerInvariance|ServerBatchUpload' \
    ./internal/aggregator

# Storage engine: group-commit coalescing, crash-injection recovery at
# shard counts 1/8/32, engine/shard state equivalence, and the
# HTTP-wired restart hammer — all named under the race detector.
go test -race -run 'GroupCommit|WALSyncOS|Crash|RecoveryRemovesOrphans|MidFileCorruptionRefused|SegmentReopenShardAndEngineEquivalence|SegmentBackgroundFlushAndCompaction|StateHash' \
    ./internal/ledger
go test -race -run 'PersistentLedgerSurvivesRestart' ./internal/integration

# Fuzz the binary record framing and the WAL replay path: ten seconds
# each over the seeded corpus plus fresh mutations.
go test -run='^$' -fuzz=FuzzFrameDecode -fuzztime=10s ./internal/ledger
go test -run='^$' -fuzz=FuzzWALReplayBytes -fuzztime=10s ./internal/ledger

# Storage-engine bench smoke: a size-bounded run whose equivalence gate
# still compares both engines' StateHash before any timing; the
# committed artifact is BENCH_storage.json (10M claims, seed 42).
go run ./cmd/irs-bench -storage -storage-out /tmp/irs_storage_smoke.json \
    -storage-claims 50000 -storage-equiv 10000 -storage-reads 2000 \
    -storage-memtable 16384

# Multi-tier filter distribution and ledger replication: the topology
# package suite (tier chaining, base-mismatch fallback, checkpoint
# gate, anti-entropy resync) plus the named sync-protocol regressions
# in bloom/ledger/wire/proxy, all under the race detector.
go test -race ./internal/topology
go test -race -run 'FilterSync|DeltaV2|UpdateCrossover|ApplyUpdate|RefreshFiltersSurvivesFilterRebuild|RefreshFiltersDetectsBaseMismatch|RestoreRecordsClearsRevokedIndex|CacheStaleBoundary' \
    ./internal/bloom ./internal/ledger ./internal/wire ./internal/proxy

# Fuzz the delta decoder (varint/gap parsing, v2 hash frames): ten
# seconds over the seeded corpus plus fresh mutations. The pattern is
# anchored because -fuzz matches by prefix and FuzzApply* share one.
go test -run='^$' -fuzz='^FuzzApplyUpdate$' -fuzztime=10s ./internal/bloom

# Topology bench smoke: a size-bounded virtual-time run; the harness
# exits nonzero if any replica fails the StateHash gate. The committed
# artifact is BENCH_topology.json (1.2M browsers, seed 42).
go run ./cmd/irs-bench -topology -topology-out /tmp/irs_topology_smoke.json \
    -topology-browsers 20000 -topology-ids 4000 -topology-window 300 \
    -topology-intervals 30,60 -topology-revokes 8 -topology-sample 2

# Observability layer: the metrics-conservation invariant end to end,
# the chaos obs determinism replay, and the obs package's own suite,
# all under the race detector.
go test -race -run 'MetricsConservation' ./internal/integration
go test -race -run 'ChaosObsDeterminism' ./cmd/irs-bench
go test -race ./internal/obs

# Fuzz the Prometheus exposition writer and the histogram: ten seconds
# each over the seeded corpus plus fresh mutations.
go test -run='^$' -fuzz=FuzzPrometheusText -fuzztime=10s ./internal/obs
go test -run='^$' -fuzz=FuzzHistogramObserve -fuzztime=10s ./internal/obs

# IRSW1 binary wire codec: the codec roundtrip/negotiation suite, the
# mixed-version compat pins (binary client vs JSON-only server and the
# upgrade-then-rollback path, at both the wire and proxy layers), the
# hostile-frame TransportError classification, and the keep-alive pool
# sizing, all named under the race detector.
go test -race -run 'Binary|ProxyClientCodecsAgree|ProxyClientAgainstLegacyProxy|KeepAliveReuseAtHighConcurrency' \
    ./internal/wire ./internal/proxy

# Fuzz the IRSW1 frame decoder (length prefix, CRC, per-kind payload
# parsers): ten seconds over the seeded corpus plus fresh mutations.
go test -run='^$' -fuzz=FuzzWireFrameDecode -fuzztime=10s ./internal/wire

# Serving-path benchmarks compile and run once each (not timed here —
# BENCH_serving.json is the committed artifact); then a tiny closed-loop
# smoke of the load harness itself, kept out of the repo. The smoke runs
# both wire codecs, so the identical-decisions-and-proofs gate and the
# binary arms execute on every check.
go test -run='^$' -bench=Serving -benchtime=1x ./internal/ledger ./internal/proxy
go run ./cmd/irs-bench -serve -serve-out /tmp/irs_serve_smoke.json \
    -serve-workers 2 -serve-ids 256 -serve-batch 16 -serve-pages 4 \
    -wire json,binary

# Chaos-arm smoke: a miniature outage run; the committed artifact is
# BENCH_chaos.json (full scale, seed 42).
go run ./cmd/irs-bench -chaos -chaos-out /tmp/irs_chaos_smoke.json \
    -serve-workers 2 -serve-ids 256 -serve-batch 16 -serve-pages 20

# Derivative-lookup smoke: tiny sweep, but the harness still asserts
# all arms return identical results for every probe; the committed
# artifact is BENCH_lookup.json (default sizes, seed 42).
go test -run='^$' -bench=BenchmarkLookup -benchtime=1x .
go run ./cmd/irs-bench -lookup -lookup-out /tmp/irs_lookup_smoke.json \
    -lookup-sizes 4000,20000 -lookup-workers 1,4 -lookup-probes 300

# Upload-ingest smoke: a tiny batch×workers sweep; the harness exits
# nonzero if the pipeline's decision sequence diverges from serial at
# any worker count. The committed artifact is BENCH_upload.json.
go run ./cmd/irs-bench -upload -upload-out /tmp/irs_upload_smoke.json \
    -upload-batches 24 -upload-workers 1,4

# Zero-alloc guard: the vectorized 8×8 DCT, the three perceptual
# hashes, and the IRSW1 wire codec's server-encode and client-decode
# hot paths must stay allocation-free; any allocs/op > 0 here means a
# scratch pool, unrolled loop, or pooled codec buffer regressed.
for pkg_bench in "./internal/dct BenchmarkDCT8x8" "./internal/phash BenchmarkPHash$" \
    "./internal/wire BenchmarkStatusEncodeBinary" "./internal/wire BenchmarkStatusDecodeBinary"; do
    pkg=${pkg_bench% *}
    bench=${pkg_bench#* }
    out=$(go test -run='^$' -bench="$bench" -benchtime=10x -benchmem "$pkg")
    echo "$out" | grep Benchmark
    if echo "$out" | grep Benchmark | awk '{for (i=1;i<=NF;i++) if ($i=="allocs/op" && $(i-1)+0>0) exit 1}'; then :; else
        echo "check.sh: kernel benchmark $bench in $pkg allocates" >&2
        exit 1
    fi
done

# Bounds-check-elimination guard for the unrolled kernels.
sh scripts/check_bce.sh

# Observability overhead gate: the harness itself fails when the
# instrumented arm's min-of-reps p99 lands more than 5% above the bare
# one; the committed artifact is BENCH_obs.json.
go test -run='^$' -bench=BenchmarkValidateObs -benchtime=1x .
go run ./cmd/irs-bench -obs-compare -obs-out /tmp/irs_obs_smoke.json \
    -serve-workers 2 -serve-ids 256 -serve-batch 16 -serve-pages 600

# /debug/metrics endpoint smoke: boot an irs-ledger with -debug, wait
# for it to listen, and check the exposition includes a known family.
go build -o /tmp/irs_ledger_check ./cmd/irs-ledger
/tmp/irs_ledger_check -id 1 -addr 127.0.0.1:18339 -appeals=false -debug \
    >/tmp/irs_ledger_check.log 2>&1 &
LEDGER_PID=$!
trap 'kill $LEDGER_PID 2>/dev/null || true' EXIT
ok=0
for _ in 1 2 3 4 5 6 7 8 9 10; do
    if curl -fsS http://127.0.0.1:18339/debug/metrics 2>/dev/null \
        | grep -q '^irs_ledger_queries_total'; then
        ok=1
        break
    fi
    sleep 0.5
done
kill $LEDGER_PID 2>/dev/null || true
if [ "$ok" != 1 ]; then
    echo "check.sh: /debug/metrics smoke failed (see /tmp/irs_ledger_check.log)" >&2
    exit 1
fi

# Adversarial suite: keyed-band-mixer identity/differential proofs,
# the crafted-collision degradation regression, the admission-control
# suite (identical decisions under benign traffic, flood isolation,
# key churn), the singleflight herd leader-failure contract, and the
# takedown/revalidation/upload torn-state hammer, named under -race.
go test -race -run 'BandMixer|CraftedCollisions|KeyedIndexedLinearDifferential' \
    ./internal/phash ./internal/aggregator
go test -race -run 'Admission|ClientKey|Singleflight' ./internal/proxy
go test -race -run 'TakedownRevalidateUploadHammer' ./internal/aggregator
go test -race -run 'AdversaryQuickDeterministicAndGated' ./cmd/irs-bench

# Fuzz the admission token accounting (clock skew, key churn, cost
# interleavings; the exact-budget over-admission bound): ten seconds.
# Anchored because -fuzz matches by prefix and FuzzAdmission* share one.
go test -run='^$' -fuzz='^FuzzAdmissionAccounting$' -fuzztime=10s ./internal/proxy

# Adversary smoke: quick-scale seeded attacks with benign control
# twins. The identical-decisions gates (keyed index == linear oracle,
# admission as a pure front door) and same-seed trace stability are
# enforced on every run; the wall-clock envelope gates are asserted by
# the committed full-scale run (BENCH_adversary.json, seed 42).
go run ./cmd/irs-bench -adversary -adversary-scale quick \
    -adversary-enforce=false -adversary-out /tmp/irs_adversary_smoke.json

echo "check.sh: all green"
