#!/bin/sh
# Repository check gate: formatting, vet, and the full test suite under
# the race detector. The parallel layer's determinism tests run at
# several worker counts regardless of the host's core count, so a pass
# here covers single-core CI machines too.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l cmd internal bench_test.go doc.go examples 2>/dev/null || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go test -race ./...
echo "check.sh: all green"
