#!/bin/sh
# Bounds-check-elimination guard: the unrolled 8×8 DCT kernels
# (internal/dct/kernel8.go) and the phash accumulation kernels
# (internal/phash/kernel.go) are written so the compiler's prove pass
# removes every bounds check — fixed-size array pointers, subslice
# walks, same-length reslices. This script recompiles both packages
# with -d=ssa/check_bce and fails if the compiler reports any "Found
# IsInBounds"/"IsSliceInBounds" inside those files, so a future edit
# can't silently reintroduce per-element checks on the hot paths.
set -eu
cd "$(dirname "$0")/.."

fail=0
for pkg_file in "irs/internal/dct kernel8.go" "irs/internal/phash kernel.go"; do
    pkg=${pkg_file% *}
    file=${pkg_file#* }
    # -count=1-style freshness: touch nothing, just force a rebuild of
    # the one package so the diagnostic actually prints.
    findings=$(go build -a -gcflags="$pkg=-d=ssa/check_bce" "$pkg" 2>&1 \
        | grep "$file" || true)
    if [ -n "$findings" ]; then
        echo "check_bce.sh: bounds checks in $pkg/$file:" >&2
        echo "$findings" >&2
        fail=1
    else
        echo "check_bce.sh: $pkg/$file clean"
    fi
done
exit $fail
