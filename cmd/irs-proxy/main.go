// Command irs-proxy runs an IRS validation proxy: the privacy-, cache-,
// and filter-layer of the bootstrap design (paper §4).
//
// Usage:
//
//	irs-proxy -addr :8331 -ledger 1=http://localhost:8330 \
//	          -ledger 2=http://localhost:8340 -refresh-interval 1h
//
// Browsers point their extension at /v1/validate?id=...; the proxy
// answers from its aggregated revocation filters when it can (definitely
// not revoked), from its proof cache next, and queries the issuing
// ledger only as a last resort.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"irs/internal/ids"
	"irs/internal/proxy"
	"irs/internal/wire"
)

// ledgerList collects repeated -ledger id=url flags.
type ledgerList map[ids.LedgerID]string

func (l ledgerList) String() string { return fmt.Sprintf("%v", map[ids.LedgerID]string(l)) }

func (l ledgerList) Set(v string) error {
	id, url, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want id=url, got %q", v)
	}
	n, err := strconv.ParseUint(id, 10, 32)
	if err != nil || n == 0 {
		return fmt.Errorf("bad ledger id %q", id)
	}
	l[ids.LedgerID(n)] = url
	return nil
}

func main() {
	ledgers := ledgerList{}
	var (
		addr            = flag.String("addr", ":8331", "listen address")
		cacheCap        = flag.Int("cache", 65536, "proof cache capacity (entries)")
		cacheTTL        = flag.Duration("cache-ttl", 5*time.Minute, "proof cache TTL (revocation propagation bound)")
		refreshInterval = flag.Duration("refresh-interval", time.Hour, "ledger filter refresh interval")
		wireCodec       = flag.String("wire", "binary", "preferred upstream wire codec (json|binary); binary negotiates per ledger and falls back to JSON")
	)
	flag.Var(ledgers, "ledger", "ledger endpoint as id=url (repeatable)")
	flag.Parse()
	if len(ledgers) == 0 {
		fmt.Fprintln(os.Stderr, "irs-proxy: at least one -ledger id=url required")
		os.Exit(2)
	}
	codec, err := wire.ParseCodec(*wireCodec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "irs-proxy: -wire: %v\n", err)
		os.Exit(2)
	}

	dir := wire.NewDirectory()
	for id, url := range ledgers {
		dir.Register(id, wire.NewClientOpts(url, "", wire.ClientOptions{Codec: codec}))
	}
	ps := proxy.NewServer(proxy.Config{
		CacheCapacity: *cacheCap,
		CacheTTL:      *cacheTTL,
		UseFilter:     true,
	}, dir)

	if err := ps.Validator().RefreshFilters(dir); err != nil {
		log.Printf("irs-proxy: initial filter refresh: %v (continuing; filters refresh on the timer)", err)
	}
	go func() {
		t := time.NewTicker(*refreshInterval)
		defer t.Stop()
		for range t.C {
			if err := ps.Validator().RefreshFilters(dir); err != nil {
				log.Printf("irs-proxy: filter refresh: %v", err)
			} else {
				log.Printf("irs-proxy: filters refreshed; stats %+v", ps.Validator().Stats())
			}
		}
	}()

	srv := &http.Server{Addr: *addr, Handler: ps, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("irs-proxy: shutting down")
		srv.Close()
	}()
	log.Printf("irs-proxy: serving on %s for %d ledgers", *addr, len(ledgers))
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("irs-proxy: %v", err)
	}
}
