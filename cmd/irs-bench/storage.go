package main

import (
	"crypto/ed25519"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/tsa"
)

// The -storage arm benchmarks the ledger persistence engines against
// each other at scale: the legacy JSON-line WAL + full-map snapshot
// engine versus the group-commit binary WAL + mmapped sorted segment
// engine. Before any timing is trusted, an equivalence gate builds both
// engines from the same record stream at a smaller size and requires
// identical StateHash digests, live and across a reopen — a wrong-but-
// fast engine must fail here, not win the charts.
//
// Per engine, the harness measures:
//
//	ingest      sustained write throughput (records/sec) for the full
//	            claim population, plus fsync-batch counts showing the
//	            group-commit coalescing ratio
//	reads       point-lookup latency (p50/p95/p99) against a uniform
//	            sample of the population — at 10M+ claims the segment
//	            engine serves most of these from mmapped segments, not
//	            from the in-RAM memtable
//	appends     single-record append latency, quiescent vs during an
//	            active compaction; the legacy engine's compaction holds
//	            the write path, the segment engine's must not
//	recovery    close + reopen time for the full population
type storageConfig struct {
	Out         string
	Claims      int
	Batch       int
	Reads       int
	Memtable    int
	EquivClaims int
	Engines     []string
	Seed        int64
	Dir         string
	KeepDirs    bool
}

type storageEngineReport struct {
	Engine        string  `json:"engine"`
	Claims        int     `json:"claims"`
	IngestSeconds float64 `json:"ingest_seconds"`
	IngestPerSec  float64 `json:"ingest_records_per_sec"`

	WALSyncs    uint64 `json:"wal_syncs"`
	WALRecords  uint64 `json:"wal_records"`
	Flushes     uint64 `json:"flushes"`
	Compactions uint64 `json:"compactions"`
	Segments    int    `json:"segments"`
	DirBytes    int64  `json:"dir_bytes"`

	ReadP50Us float64 `json:"read_p50_us"`
	ReadP95Us float64 `json:"read_p95_us"`
	ReadP99Us float64 `json:"read_p99_us"`

	AppendQuiescentP99Us float64 `json:"append_quiescent_p99_us"`
	AppendCompactP99Us   float64 `json:"append_during_compaction_p99_us"`
	AppendCompactMaxMs   float64 `json:"append_during_compaction_max_ms"`
	CompactSeconds       float64 `json:"compact_seconds"`

	RecoverySeconds float64 `json:"recovery_seconds"`
}

type storageReport struct {
	Seed           int64                 `json:"seed"`
	Claims         int                   `json:"claims"`
	EquivClaims    int                   `json:"equivalence_claims"`
	StateHashMatch bool                  `json:"state_hashes_match"`
	StateHash      string                `json:"state_hash"`
	Engines        []storageEngineReport `json:"engines"`
}

// benchRecordStream generates the deterministic claim stream both
// engines ingest. IDs carry 8 random bytes (so segment sort order is
// uncorrelated with insertion order, like production CSPRNG IDs) plus a
// 4-byte counter guaranteeing uniqueness.
type benchRecordStream struct {
	rng  *rand.Rand
	next uint32
	t0   time.Time
}

func newBenchRecordStream(seed int64) *benchRecordStream {
	return &benchRecordStream{
		rng: rand.New(rand.NewSource(seed)),
		t0:  time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC),
	}
}

func (s *benchRecordStream) batch(n int) []ledger.Record {
	recs := make([]ledger.Record, n)
	for i := range recs {
		rec := &recs[i]
		rec.ID.Ledger = storageLedgerID
		binary.BigEndian.PutUint64(rec.ID.Rec[:8], s.rng.Uint64())
		binary.BigEndian.PutUint32(rec.ID.Rec[8:], s.next)
		s.next++
		rec.PubKey = make([]byte, ed25519.PublicKeySize)
		s.rng.Read(rec.PubKey)
		rec.HashSig = make([]byte, ed25519.SignatureSize)
		s.rng.Read(rec.HashSig)
		s.rng.Read(rec.ContentHash[:])
		tok := &tsa.Token{
			Serial: uint64(s.next),
			Time:   s.t0.Add(time.Duration(s.next) * time.Second),
			Sig:    make([]byte, ed25519.SignatureSize),
		}
		s.rng.Read(tok.Digest[:])
		s.rng.Read(tok.Sig)
		rec.Timestamp = tok
		switch r := s.rng.Intn(20); {
		case r == 0:
			rec.State = ledger.StatePermanentlyRevoked
		case r < 3:
			rec.State = ledger.StateRevoked
			rec.OpSeq = uint64(1 + s.rng.Intn(2))
		default:
			rec.State = ledger.StateActive
		}
		recs[i] = *rec
	}
	return recs
}

const storageLedgerID = 9

func storageEngineConfig(engine, dir string, memtable int) (ledger.Config, error) {
	cfg := ledger.Config{
		ID:              storageLedgerID,
		Dir:             dir,
		WALSync:         ledger.WALSyncOS,
		MemtableRecords: memtable,
	}
	switch engine {
	case "segments":
		cfg.Engine = ledger.EngineSegments
	case "json":
		cfg.Engine = ledger.EngineJSON
	default:
		return cfg, fmt.Errorf("unknown engine %q (want segments or json)", engine)
	}
	return cfg, nil
}

// storageEquivalence builds every engine from the identical record
// stream at the gate size and requires one StateHash, live and
// reopened. Returns the common hash.
func storageEquivalence(cfg storageConfig, scratch string) (string, error) {
	var want string
	for _, engine := range cfg.Engines {
		dir := filepath.Join(scratch, "equiv-"+engine)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", err
		}
		lcfg, err := storageEngineConfig(engine, dir, cfg.Memtable)
		if err != nil {
			return "", err
		}
		// A small memtable here forces flush/compaction machinery into
		// the gated state, not just the in-RAM map.
		if engine == "segments" && cfg.EquivClaims >= 4096 {
			lcfg.MemtableRecords = cfg.EquivClaims / 8
			lcfg.CompactAfter = 3
		}
		l, err := ledger.New(lcfg)
		if err != nil {
			return "", err
		}
		stream := newBenchRecordStream(cfg.Seed)
		for done := 0; done < cfg.EquivClaims; {
			n := cfg.Batch
			if done+n > cfg.EquivClaims {
				n = cfg.EquivClaims - done
			}
			if err := l.RestoreRecords(stream.batch(n)); err != nil {
				l.Close()
				return "", fmt.Errorf("%s equivalence ingest: %w", engine, err)
			}
			done += n
		}
		live, err := l.StateHash()
		if err != nil {
			l.Close()
			return "", err
		}
		if err := l.Close(); err != nil {
			return "", err
		}
		rl, err := ledger.New(lcfg)
		if err != nil {
			return "", fmt.Errorf("%s equivalence reopen: %w", engine, err)
		}
		reopened, err := rl.StateHash()
		rl.Close()
		if err != nil {
			return "", err
		}
		if live != reopened {
			return "", fmt.Errorf("%s: state hash changed across reopen", engine)
		}
		h := hex.EncodeToString(live[:])
		if want == "" {
			want = h
		} else if h != want {
			return "", fmt.Errorf("engine %s state hash %s != %s", engine, h, want)
		}
	}
	return want, nil
}

func storagePercentileUs(lat []time.Duration, p float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Microsecond)
}

func storageDirBytes(dir string) int64 {
	var total int64
	filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}

func storageBenchEngine(cfg storageConfig, scratch, engine string) (storageEngineReport, error) {
	rep := storageEngineReport{Engine: engine, Claims: cfg.Claims}
	dir := filepath.Join(scratch, "bench-"+engine)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return rep, err
	}
	lcfg, err := storageEngineConfig(engine, dir, cfg.Memtable)
	if err != nil {
		return rep, err
	}
	l, err := ledger.New(lcfg)
	if err != nil {
		return rep, err
	}
	defer l.Close()

	// Ingest: stream the full population in batches, sampling IDs for
	// the read phase along the way.
	stream := newBenchRecordStream(cfg.Seed)
	sampleEvery := cfg.Claims / cfg.Reads
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	var sample []ids.PhotoID
	start := time.Now()
	for done := 0; done < cfg.Claims; {
		n := cfg.Batch
		if done+n > cfg.Claims {
			n = cfg.Claims - done
		}
		batch := stream.batch(n)
		if err := l.RestoreRecords(batch); err != nil {
			return rep, fmt.Errorf("%s ingest at %d: %w", engine, done, err)
		}
		for i := 0; i < n; i += sampleEvery {
			sample = append(sample, batch[i].ID)
		}
		done += n
	}
	if err := l.Sync(); err != nil {
		return rep, err
	}
	rep.IngestSeconds = time.Since(start).Seconds()
	rep.IngestPerSec = float64(cfg.Claims) / rep.IngestSeconds
	fmt.Printf("  [%s] ingest %d claims in %.1fs (%.0f rec/s)\n",
		engine, cfg.Claims, rep.IngestSeconds, rep.IngestPerSec)

	// Reads: uniform point lookups across the whole population. Shuffle
	// so segment locality cannot flatter the numbers.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	rng.Shuffle(len(sample), func(i, j int) { sample[i], sample[j] = sample[j], sample[i] })
	if len(sample) > cfg.Reads {
		sample = sample[:cfg.Reads]
	}
	lat := make([]time.Duration, 0, len(sample))
	for _, id := range sample {
		t0 := time.Now()
		if _, err := l.Record(id); err != nil {
			return rep, fmt.Errorf("%s read %s: %w", engine, id, err)
		}
		lat = append(lat, time.Since(t0))
	}
	rep.ReadP50Us = storagePercentileUs(lat, 0.50)
	rep.ReadP95Us = storagePercentileUs(lat, 0.95)
	rep.ReadP99Us = storagePercentileUs(lat, 0.99)
	fmt.Printf("  [%s] reads p50=%.1fµs p95=%.1fµs p99=%.1fµs (%d lookups)\n",
		engine, rep.ReadP50Us, rep.ReadP95Us, rep.ReadP99Us, len(lat))

	// Append latency, quiescent baseline then during an active
	// compaction. The legacy engine's compaction freezes writers while
	// it snapshots the full map; the segment engine merges off the
	// write path, so its during-compaction p99 must stay near baseline.
	appendOnce := func() (time.Duration, error) {
		batch := stream.batch(1)
		t0 := time.Now()
		err := l.RestoreRecords(batch)
		return time.Since(t0), err
	}
	const quiescentAppends = 2000
	qlat := make([]time.Duration, 0, quiescentAppends)
	for i := 0; i < quiescentAppends; i++ {
		d, err := appendOnce()
		if err != nil {
			return rep, err
		}
		qlat = append(qlat, d)
	}
	rep.AppendQuiescentP99Us = storagePercentileUs(qlat, 0.99)

	compactDone := make(chan error, 1)
	compactStart := time.Now()
	go func() { compactDone <- l.Compact() }()
	var clat []time.Duration
	var maxStall time.Duration
	compacting := true
	for compacting {
		select {
		case err := <-compactDone:
			if err != nil {
				return rep, fmt.Errorf("%s compact: %w", engine, err)
			}
			compacting = false
		default:
			d, err := appendOnce()
			if err != nil {
				return rep, err
			}
			clat = append(clat, d)
			if d > maxStall {
				maxStall = d
			}
			// Pace the probe so a minutes-long compaction at full scale
			// is raced by thousands of appends, not tens of millions.
			time.Sleep(time.Millisecond)
		}
	}
	rep.CompactSeconds = time.Since(compactStart).Seconds()
	rep.AppendCompactP99Us = storagePercentileUs(clat, 0.99)
	rep.AppendCompactMaxMs = float64(maxStall) / float64(time.Millisecond)
	fmt.Printf("  [%s] append p99 quiescent=%.1fµs during-compaction=%.1fµs (max stall %.1fms, compact %.1fs, %d appends raced it)\n",
		engine, rep.AppendQuiescentP99Us, rep.AppendCompactP99Us, rep.AppendCompactMaxMs,
		rep.CompactSeconds, len(clat))

	st := l.StorageStats()
	rep.WALSyncs = st.WALSyncs
	rep.WALRecords = st.WALRecords
	rep.Flushes = st.Flushes
	rep.Compactions = st.Compactions
	rep.Segments = st.Segments
	wantClaims, _ := l.Count()
	if err := l.Close(); err != nil {
		return rep, err
	}
	rep.DirBytes = storageDirBytes(dir)

	// Recovery: a cold reopen of the full population.
	t0 := time.Now()
	rl, err := ledger.New(lcfg)
	if err != nil {
		return rep, fmt.Errorf("%s recovery: %w", engine, err)
	}
	rep.RecoverySeconds = time.Since(t0).Seconds()
	if claims, _ := rl.Count(); claims != wantClaims {
		rl.Close()
		return rep, fmt.Errorf("%s recovery: %d claims, want %d", engine, claims, wantClaims)
	}
	if err := rl.Close(); err != nil {
		return rep, err
	}
	fmt.Printf("  [%s] recovery %.2fs, dir %.1f MiB\n",
		engine, rep.RecoverySeconds, float64(rep.DirBytes)/(1<<20))
	return rep, nil
}

func runStorage(cfg storageConfig) error {
	scratch := cfg.Dir
	if scratch == "" {
		d, err := os.MkdirTemp("", "irs-storage-bench-")
		if err != nil {
			return err
		}
		scratch = d
	}
	if !cfg.KeepDirs {
		defer os.RemoveAll(scratch)
	}

	report := storageReport{Seed: cfg.Seed, Claims: cfg.Claims, EquivClaims: cfg.EquivClaims}
	fmt.Printf("storage: equivalence gate at %d claims (%v)\n", cfg.EquivClaims, cfg.Engines)
	hash, err := storageEquivalence(cfg, scratch)
	if err != nil {
		return fmt.Errorf("equivalence gate: %w", err)
	}
	report.StateHashMatch = true
	report.StateHash = hash
	fmt.Printf("storage: engines agree, state hash %s…\n", hash[:16])

	for _, engine := range cfg.Engines {
		fmt.Printf("storage: benchmarking %s at %d claims\n", engine, cfg.Claims)
		rep, err := storageBenchEngine(cfg, scratch, engine)
		if err != nil {
			return err
		}
		report.Engines = append(report.Engines, rep)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.Out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("storage: wrote %s\n", cfg.Out)
	return nil
}
