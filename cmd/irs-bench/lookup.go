package main

// The -lookup arm measures the derivative-defense hot path: resolving
// an upload's perceptual signature against the aggregator's robust-hash
// database. It sweeps DB size × lookup arm × client workers:
//
//	linear     the O(n) reference scan (the pre-index serving path)
//	indexed    the multi-index Hamming index at its default band count
//	indexed11  the classic 11-exact-band decomposition (ablation: its
//	           6-bit buckets stay dense, so it loses to wider bands as
//	           soon as the DB outgrows 2^6 × a small constant)
//
// All arms run against the same SigIndex snapshot, so the comparison
// is honest (both pay the tombstone check) and the harness can assert
// the arms return identical results for every probe before any timing
// is trusted. Workers are concurrent client goroutines — the upload
// frontend's concurrency, not the internal pool width.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"irs/internal/aggregator"
	"irs/internal/ids"
	"irs/internal/phash"
)

type lookupConfig struct {
	Out     string
	Sizes   []int
	Workers []int
	Probes  int
	HitFrac float64
	Seed    int64
}

type lookupRow struct {
	Size             int     `json:"size"`
	Arm              string  `json:"arm"`
	Bands            int     `json:"bands,omitempty"`
	Workers          int     `json:"workers"`
	BuildMs          float64 `json:"build_ms,omitempty"`
	NsPerLookup      float64 `json:"ns_per_lookup"`
	LookupsPerSec    float64 `json:"lookups_per_sec"`
	SpeedupVsLinear  float64 `json:"speedup_vs_linear,omitempty"`
	Hits             int     `json:"hits"`
	IndexedEntries   int     `json:"indexed_entries,omitempty"`
	TombstonedAlive  int     `json:"tombstoned,omitempty"`
	ResultsIdentical bool    `json:"results_identical"`
}

type lookupReport struct {
	Seed             int64       `json:"seed"`
	Probes           int         `json:"probes"`
	HitFraction      float64     `json:"hit_fraction"`
	ResultsIdentical bool        `json:"results_identical"`
	Rows             []lookupRow `json:"rows"`
}

func lookupID(n int) ids.PhotoID {
	var id ids.PhotoID
	id.Ledger = ids.LedgerID(n%8 + 1)
	binary.BigEndian.PutUint64(id.Rec[:8], uint64(n))
	return id
}

func lookupSig(rng *rand.Rand) phash.Signature {
	return phash.Signature{
		A: phash.Hash(rng.Uint64()),
		D: phash.Hash(rng.Uint64()),
		P: phash.Hash(rng.Uint64()),
	}
}

// perturbHash flips exactly d distinct bits.
func perturbHash(rng *rand.Rand, h phash.Hash, d int) phash.Hash {
	for _, bit := range rng.Perm(64)[:d] {
		h ^= 1 << uint(bit)
	}
	return h
}

type lookupArm struct {
	name   string
	bands  int // 0 = linear
	lookup func(phash.Signature) (ids.PhotoID, bool)
	build  time.Duration
	stats  aggregator.IndexStats
}

func runLookup(cfg lookupConfig) error {
	report := lookupReport{
		Seed:             cfg.Seed,
		Probes:           cfg.Probes,
		HitFraction:      cfg.HitFrac,
		ResultsIdentical: true,
	}
	for _, size := range cfg.Sizes {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(size)))
		sigs := make([]phash.Signature, size)
		pids := make([]ids.PhotoID, size)
		for i := range sigs {
			sigs[i] = lookupSig(rng)
			pids[i] = lookupID(i)
		}

		// Probes are miss-dominated (most uploads are not derivatives of
		// hosted content); hits are near-threshold derivatives, the
		// hardest true positives.
		probes := make([]phash.Signature, cfg.Probes)
		for i := range probes {
			if rng.Float64() < cfg.HitFrac {
				base := sigs[rng.Intn(size)]
				probes[i] = phash.Signature{
					A: perturbHash(rng, base.A, 9),
					D: perturbHash(rng, base.D, 10),
					P: perturbHash(rng, base.P, 40),
				}
			} else {
				probes[i] = lookupSig(rng)
			}
		}

		arms := []*lookupArm{
			{name: "linear"},
			{name: "indexed", bands: aggregator.DefaultIndexBands},
			{name: "indexed11", bands: phash.NumBands},
		}
		// One shared index serves the linear reference; the indexed arms
		// get their own build so BuildMs is per-decomposition. A sprinkle
		// of takedowns keeps every arm honest about tombstone checks.
		tombstones := size / 200
		for _, arm := range arms {
			bands := arm.bands
			if bands == 0 {
				bands = aggregator.DefaultIndexBands
			}
			start := time.Now()
			idx := aggregator.NewSigIndex(aggregator.IndexConfig{Bands: bands})
			idx.AddAll(sigs, pids)
			for i := 0; i < tombstones; i++ {
				idx.Remove(lookupID(i * 100))
			}
			arm.build = time.Since(start)
			arm.stats = idx.Stats()
			if arm.name == "linear" {
				arm.lookup = idx.LookupLinear
			} else {
				arm.lookup = idx.Lookup
			}
		}

		// Correctness gate: every arm must agree on every probe before
		// its timings mean anything.
		type outcome struct {
			id ids.PhotoID
			ok bool
		}
		ref := make([]outcome, len(probes))
		for i, p := range probes {
			id, ok := arms[0].lookup(p)
			ref[i] = outcome{id: id, ok: ok}
		}
		for _, arm := range arms[1:] {
			for i, p := range probes {
				id, ok := arm.lookup(p)
				if ok != ref[i].ok || id != ref[i].id {
					report.ResultsIdentical = false
					return fmt.Errorf("size %d: arm %s disagrees with linear on probe %d: (%v,%v) != (%v,%v)",
						size, arm.name, i, id, ok, ref[i].id, ref[i].ok)
				}
			}
		}

		linearNs := map[int]float64{}
		for _, arm := range arms {
			for _, workers := range cfg.Workers {
				elapsed, hits := timeLookups(arm.lookup, probes, workers)
				ns := float64(elapsed.Nanoseconds()) / float64(len(probes))
				row := lookupRow{
					Size:             size,
					Arm:              arm.name,
					Bands:            arm.bands,
					Workers:          workers,
					BuildMs:          float64(arm.build.Microseconds()) / 1000,
					NsPerLookup:      ns,
					LookupsPerSec:    float64(len(probes)) / elapsed.Seconds(),
					Hits:             hits,
					IndexedEntries:   arm.stats.Indexed,
					TombstonedAlive:  arm.stats.Dead,
					ResultsIdentical: true,
				}
				if arm.name == "linear" {
					linearNs[workers] = ns
				} else if base := linearNs[workers]; base > 0 {
					row.SpeedupVsLinear = base / ns
				}
				report.Rows = append(report.Rows, row)
				fmt.Printf("size=%-7d arm=%-9s workers=%-2d %10.0f ns/lookup %12.0f lookups/s",
					size, arm.name, workers, row.NsPerLookup, row.LookupsPerSec)
				if row.SpeedupVsLinear > 0 {
					fmt.Printf("  %5.1fx vs linear", row.SpeedupVsLinear)
				}
				fmt.Println()
			}
		}
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.Out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", cfg.Out)
	return nil
}

// timeLookups drives the probe list through the lookup function from
// `workers` concurrent client goroutines (disjoint contiguous shares)
// and returns wall-clock plus total hits.
func timeLookups(lookup func(phash.Signature) (ids.PhotoID, bool), probes []phash.Signature, workers int) (time.Duration, int) {
	if workers < 1 {
		workers = 1
	}
	hits := make([]int, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		lo := w * len(probes) / workers
		hi := (w + 1) * len(probes) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			h := 0
			for _, p := range probes[lo:hi] {
				if _, ok := lookup(p); ok {
					h++
				}
			}
			hits[w] = h
		}(w, lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := 0
	for _, h := range hits {
		total += h
	}
	return elapsed, total
}

// parseIntList parses a comma-separated integer list flag.
func parseIntList(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad %s entry %q", flagName, part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s is empty", flagName)
	}
	return out, nil
}
