package main

import (
	"fmt"
	"testing"

	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/proxy"
)

// TestChaosObsDeterminism is the fault-replay regression for the
// observability layer: two same-seed chaos runs must produce identical
// request/outcome trace hashes at every worker count, and — because the
// validator's latency histograms observe the injected barrier clock,
// not wall time — a single-worker run must reproduce its entire obs
// registry byte for byte in Prometheus text. At higher worker counts
// only the scheduling-independent metric view is pinned (see
// chaosMetricsKey): the breaker trip point and cache races
// legitimately move counts between columns of a group, never across
// groups.
func TestChaosObsDeterminism(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := chaosConfig{
				Workers: workers,
				IDs:     128,
				Batch:   8,
				Pages:   12,
				Revoked: 0.1,
				Zipf:    1.1,
				Outage:  0.25,
				Seed:    42,
			}
			backend, err := setupServeLedger(cfg.serveConfig(), 0)
			if err != nil {
				t.Fatal(err)
			}
			defer backend.close()
			truth := make(map[ids.PhotoID]ledger.State, len(backend.ids))
			for _, id := range backend.ids {
				p, err := backend.direct.Status(id)
				if err != nil {
					t.Fatal(err)
				}
				truth[id] = p.State
			}
			spec := chaosSpec{"fail-open-fresh/retry+breaker", true, true, proxy.DegradeFailOpenFresh}

			first, err := runChaosOnce(cfg, backend, spec, truth)
			if err != nil {
				t.Fatal(err)
			}
			second, err := runChaosOnce(cfg, backend, spec, truth)
			if err != nil {
				t.Fatal(err)
			}
			if first.traceHash != second.traceHash {
				t.Fatalf("trace hash diverged: %s vs %s", first.traceHash, second.traceHash)
			}
			if k1, k2 := chaosMetricsKey(first.snap), chaosMetricsKey(second.snap); k1 != k2 {
				t.Fatalf("stable metric view diverged:\n  %s\n  %s", k1, k2)
			}
			if workers == 1 && first.promText != second.promText {
				t.Fatalf("single-worker registry not byte-identical:\n--- first ---\n%s\n--- second ---\n%s",
					first.promText, second.promText)
			}
		})
	}
}
