package main

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/obs"
	"irs/internal/parallel"
	"irs/internal/proxy"
	"irs/internal/wire"
)

// The -chaos harness drives the -serve load model through an injected
// ledger outage and measures what each degradation posture serves. A
// deterministic fraction of every worker's pages falls inside an
// outage window during which the (wrapped) ledger transport refuses
// every request; phase boundaries are barriers, so which requests see
// the outage is a function of the seed alone, never of scheduling. The
// four arms toggle the two serving-path protections independently on
// both degradation modes that matter:
//
//	fail-closed/raw            errors propagate, no retry, no breaker
//	fail-closed/retry          RetryClient, no breaker
//	fail-closed/retry+breaker  RetryClient + per-ledger circuit breaker
//	fail-open-fresh/retry+breaker  + stale-proof serving (DegradePolicy)
//
// Correctness is judged against the static ground truth captured at
// setup (nothing is revoked mid-run, so a stale proof is still the
// truth — exactly the regime FailOpenFresh is for). Every arm runs
// twice with the same seed; the request/outcome trace hashes must
// match (trace_stable), the fault-replay determinism check.

// chaosConfig carries the -chaos flags (sharing the -serve-* workload
// shape).
type chaosConfig struct {
	Out     string
	Workers int
	IDs     int
	Batch   int
	Pages   int // measured pages per worker across all three phases
	Revoked float64
	Zipf    float64
	Outage  float64 // fraction of pages inside the outage window
	Seed    int64
}

// chaosArm is one measured posture.
type chaosArm struct {
	Arm     string `json:"arm"`
	Retry   bool   `json:"retry"`
	Breaker bool   `json:"breaker"`
	Degrade string `json:"degrade"`

	PagesTotal   int `json:"pages_total"`
	PagesServed  int `json:"pages_served"`
	PagesCorrect int `json:"pages_correct_and_served"`
	OutagePages  int `json:"outage_pages"`

	Availability float64 `json:"availability"`
	Goodput      float64 `json:"goodput"` // correct-and-served / total

	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	OutageP99Ms float64 `json:"outage_p99_ms"` // p99 inside the window

	Proxy        proxy.StatsSnapshot `json:"proxy_stats"`
	Retries      uint64              `json:"retries"`
	BudgetDenied uint64              `json:"budget_denied"`

	TraceHash   string `json:"trace_hash"`
	TraceStable bool   `json:"trace_stable"`

	// Metrics is the first run's obs registry snapshot. MetricsStable
	// compares the scheduling-independent view of both runs: total
	// validations plus outcome-group sums (hit+query, unavailable+
	// fast-fail, stale, filter). The split inside a group — e.g. how many
	// outage pages fast-failed vs erred upstream — legitimately depends
	// on when the breaker tripped relative to each in-flight page, so
	// only single-worker runs pin the full snapshot byte for byte (the
	// regression test in chaos_test.go does exactly that).
	Metrics       []obs.SeriesSnapshot `json:"metrics,omitempty"`
	MetricsStable bool                 `json:"metrics_stable"`
}

// chaosReport is the BENCH_chaos.json document.
type chaosReport struct {
	Seed       int64      `json:"seed"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Workers    int        `json:"workers"`
	IDs        int        `json:"ids"`
	Revoked    float64    `json:"revoked_fraction"`
	Zipf       float64    `json:"zipf_s"`
	Outage     float64    `json:"outage_fraction"`
	Arms       []chaosArm `json:"arms"`
	Note       string     `json:"note"`
}

// chaosSpec is one arm's posture.
type chaosSpec struct {
	name    string
	retry   bool
	breaker bool
	degrade proxy.DegradeMode
}

// chaosService injects the outage: while down, every call fails with a
// pre-send transport error (the connection-refused class a dead ledger
// produces), which both retry policies legitimately retry.
type chaosService struct {
	wire.Service
	down *atomic.Bool
}

// errLedgerDown is the injected failure.
var errLedgerDown = fmt.Errorf("chaos: ledger down")

func (c *chaosService) Status(id ids.PhotoID) (*ledger.StatusProof, error) {
	if c.down.Load() {
		return nil, &wire.TransportError{PreSend: true, Err: errLedgerDown}
	}
	return c.Service.Status(id)
}

func (c *chaosService) StatusBatch(batch []ids.PhotoID) ([]*ledger.StatusProof, error) {
	if c.down.Load() {
		return nil, &wire.TransportError{PreSend: true, Err: errLedgerDown}
	}
	return c.Service.StatusBatch(batch)
}

// chaosWorker is one closed-loop browser's per-run state.
type chaosWorker struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	h    hash.Hash

	lat       []time.Duration
	outageLat []time.Duration
	total     int
	served    int
	correct   int
}

// chaosOutcome is one run's measurements (metrics + trace hash).
type chaosOutcome struct {
	workers   []*chaosWorker
	proxy     proxy.StatsSnapshot
	retries   uint64
	denied    uint64
	traceHash string
	snap      []obs.SeriesSnapshot
	promText  string
}

// runChaosOnce executes one arm once: preload, warm, outage, recover.
func runChaosOnce(cfg chaosConfig, backend *serveLedger, spec chaosSpec, truth map[ids.PhotoID]ledger.State) (*chaosOutcome, error) {
	var down atomic.Bool
	chaos := &chaosService{Service: backend.direct, down: &down}
	var svc wire.Service = chaos
	var rc *wire.RetryClient
	if spec.retry {
		rc = wire.NewRetryClient(chaos, wire.RetryConfig{
			MaxAttempts: 3,
			// Millisecond-scale backoffs keep the harness honest about
			// retry amplification without dominating wall clock; the
			// per-attempt deadline is moot against an in-process backend.
			BaseBackoff:    time.Millisecond,
			MaxBackoff:     4 * time.Millisecond,
			AttemptTimeout: -1,
			Seed:           cfg.Seed ^ 0xc4a0,
		})
		svc = rc
	}

	// The validator clock is advanced only at phase barriers: frozen
	// time keeps warm-phase proofs fresh, one jump expires them all
	// before the outage (so FailOpenFresh must lean on the stale
	// window), and a second jump lets the breaker's cooldown lapse for
	// the recovery probe.
	now := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	cacheTTL := time.Minute
	// A fresh registry and tracer per run, both on the phase clock: the
	// validator's latency histograms observe zero-width intervals (the
	// clock only advances at barriers), so two same-seed runs produce
	// snapshots that differ only where scheduling legitimately leaks in
	// (see chaosArm.MetricsStable).
	reg := obs.NewRegistry()
	clock := func() time.Time { return now }
	tracer := obs.NewTracer(4*cfg.Workers, clock)
	v := proxy.NewValidator(proxy.Config{
		CacheCapacity: cfg.IDs * 2,
		CacheTTL:      cacheTTL,
		Stripes:       16,
		Degrade:       proxy.DegradePolicy{Mode: spec.degrade, StaleTTL: time.Hour},
		Breaker:       proxy.BreakerConfig{Enabled: spec.breaker, FailureThreshold: 5, Cooldown: 5 * time.Second},
		Clock:         clock,
		Obs:           reg,
		Tracer:        tracer,
	}, func(id ids.PhotoID) (*ledger.StatusProof, error) {
		return svc.Status(id)
	})
	v.SetBatchQuery(func(_ ids.LedgerID, page []ids.PhotoID) ([]*ledger.StatusProof, error) {
		return svc.StatusBatch(page)
	})

	// Preload: cache the whole population so the outage tests staleness
	// policy, not cold-start coverage (a real proxy has been serving for
	// hours before a ledger dies).
	for lo := 0; lo < len(backend.ids); lo += cfg.Batch {
		hi := lo + cfg.Batch
		if hi > len(backend.ids) {
			hi = len(backend.ids)
		}
		if _, err := v.ValidateBatch(backend.ids[lo:hi]); err != nil {
			return nil, fmt.Errorf("preload: %w", err)
		}
	}
	v.ResetStats()

	workers := make([]*chaosWorker, cfg.Workers)
	for w := range workers {
		rng := rand.New(rand.NewSource(parallel.SplitSeed(cfg.Seed, w)))
		workers[w] = &chaosWorker{
			rng:  rng,
			zipf: rand.NewZipf(rng, cfg.Zipf, 1, uint64(len(backend.ids)-1)),
			h:    sha256.New(),
		}
	}

	outagePages := int(float64(cfg.Pages)*cfg.Outage + 0.5)
	if outagePages < 1 {
		outagePages = 1
	}
	warmPages := (cfg.Pages - outagePages) / 2
	recoverPages := cfg.Pages - outagePages - warmPages

	runPhase := func(marker byte, pages int, inOutage bool) error {
		var wg sync.WaitGroup
		errs := make([]error, len(workers))
		for w, cw := range workers {
			wg.Add(1)
			go func(w int, cw *chaosWorker) {
				defer wg.Done()
				cw.h.Write([]byte{marker})
				page := make([]ids.PhotoID, cfg.Batch)
				var idxBuf [8]byte
				for p := 0; p < pages; p++ {
					for i := range page {
						k := cw.zipf.Uint64()
						page[i] = backend.ids[k]
						binary.BigEndian.PutUint64(idxBuf[:], k)
						cw.h.Write(idxBuf[:])
					}
					t0 := time.Now()
					res, err := v.ValidateBatch(page)
					d := time.Since(t0)
					cw.total++
					cw.lat = append(cw.lat, d)
					if inOutage {
						cw.outageLat = append(cw.outageLat, d)
					}
					served := err == nil
					correct := served
					if served {
						for i, r := range res {
							if r.State != truth[page[i]] {
								correct = false
								break
							}
						}
					} else if spec.degrade == proxy.DegradeFailClosed && !wantOutageError(err, inOutage) {
						errs[w] = fmt.Errorf("unexpected failure outside the outage: %w", err)
						return
					}
					if served {
						cw.served++
					}
					if correct {
						cw.correct++
					}
					outcome := byte(0)
					if served {
						outcome = 1
					}
					cw.h.Write([]byte{outcome})
				}
			}(w, cw)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	if err := runPhase('W', warmPages, false); err != nil {
		return nil, err
	}
	now = now.Add(cacheTTL + time.Minute) // expire every cached proof
	down.Store(true)
	if err := runPhase('O', outagePages, true); err != nil {
		return nil, err
	}
	down.Store(false)
	now = now.Add(time.Minute) // past the breaker cooldown
	if err := runPhase('R', recoverPages, false); err != nil {
		return nil, err
	}

	out := &chaosOutcome{workers: workers, proxy: v.Stats(), snap: reg.Snapshot(), promText: reg.PrometheusText()}
	if rc != nil {
		st := rc.Stats()
		out.retries, out.denied = st.Retries, st.BudgetDenied
	}
	combined := sha256.New()
	for _, cw := range workers {
		combined.Write(cw.h.Sum(nil))
	}
	out.traceHash = hex.EncodeToString(combined.Sum(nil))
	return out, nil
}

// wantOutageError says whether a fail-closed page error is expected.
func wantOutageError(err error, inOutage bool) bool {
	return err != nil && inOutage
}

// chaosMetricsKey reduces a snapshot to its scheduling-independent
// view: the validation total plus outcome-group sums. The groups pair
// outcomes whose individual split depends on goroutine interleaving
// (cache hit vs ledger query when workers race on the same expired id;
// upstream error vs breaker fast-fail around the trip point) but whose
// sum is fixed by the seed.
func chaosMetricsKey(snap []obs.SeriesSnapshot) string {
	val := func(name string, labels ...obs.Label) float64 {
		v, _ := obs.Value(snap, name, labels...)
		return v
	}
	out := func(o string) float64 {
		return val("irs_proxy_outcomes_total", obs.L("outcome", o))
	}
	return fmt.Sprintf("total=%.0f served=%.0f failed=%.0f stale=%.0f filter=%.0f",
		val("irs_proxy_validations_total"),
		out("cache_hit")+out("ledger_query"),
		out("unavailable")+out("breaker_fast_fail"),
		out("stale_served"),
		out("filter_miss"))
}

// runChaosArm runs one posture twice with the same seed: the first run
// supplies the metrics, the second only its trace hash (the replay
// determinism check).
func runChaosArm(cfg chaosConfig, backend *serveLedger, spec chaosSpec, truth map[ids.PhotoID]ledger.State) (chaosArm, error) {
	first, err := runChaosOnce(cfg, backend, spec, truth)
	if err != nil {
		return chaosArm{}, fmt.Errorf("%s: %w", spec.name, err)
	}
	second, err := runChaosOnce(cfg, backend, spec, truth)
	if err != nil {
		return chaosArm{}, fmt.Errorf("%s (replay): %w", spec.name, err)
	}

	var all, outage []time.Duration
	total, served, correct := 0, 0, 0
	for _, cw := range first.workers {
		all = append(all, cw.lat...)
		outage = append(outage, cw.outageLat...)
		total += cw.total
		served += cw.served
		correct += cw.correct
	}
	pct := func(ds []time.Duration, p float64) float64 {
		if len(ds) == 0 {
			return 0
		}
		sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
		return float64(ds[int(p*float64(len(ds)-1))].Microseconds()) / 1000
	}
	arm := chaosArm{
		Arm:           spec.name,
		Retry:         spec.retry,
		Breaker:       spec.breaker,
		Degrade:       spec.degrade.String(),
		Metrics:       first.snap,
		MetricsStable: chaosMetricsKey(first.snap) == chaosMetricsKey(second.snap),
		PagesTotal:    total,
		PagesServed:   served,
		PagesCorrect:  correct,
		OutagePages:   len(outage),
		P50Ms:         pct(all, 0.50),
		P95Ms:         pct(all, 0.95),
		P99Ms:         pct(all, 0.99),
		OutageP99Ms:   pct(outage, 0.99),
		Proxy:         first.proxy,
		Retries:       first.retries,
		BudgetDenied:  first.denied,
		TraceHash:     first.traceHash,
		TraceStable:   first.traceHash == second.traceHash,
	}
	if total > 0 {
		arm.Availability = float64(served) / float64(total)
		arm.Goodput = float64(correct) / float64(total)
	}
	return arm, nil
}

// runChaos executes every posture and writes the report.
func runChaos(cfg chaosConfig) error {
	backend, err := setupServeLedger(cfg.serveConfig(), 0)
	if err != nil {
		return err
	}
	defer backend.close()

	// Static ground truth: the state every id was claimed with.
	truth := make(map[ids.PhotoID]ledger.State, len(backend.ids))
	for _, id := range backend.ids {
		p, err := backend.direct.Status(id)
		if err != nil {
			return err
		}
		truth[id] = p.State
	}

	specs := []chaosSpec{
		{"fail-closed/raw", false, false, proxy.DegradeFailClosed},
		{"fail-closed/retry", true, false, proxy.DegradeFailClosed},
		{"fail-closed/retry+breaker", true, true, proxy.DegradeFailClosed},
		{"fail-open-fresh/retry+breaker", true, true, proxy.DegradeFailOpenFresh},
	}
	report := chaosReport{
		Seed:       cfg.Seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    cfg.Workers,
		IDs:        cfg.IDs,
		Revoked:    cfg.Revoked,
		Zipf:       cfg.Zipf,
		Outage:     cfg.Outage,
		Note: "closed loop against a pre-warmed proxy; the middle outage_fraction of each worker's " +
			"pages runs with the ledger transport down; correctness is vs the static claim-time " +
			"truth; each arm runs twice per seed and trace_stable compares the request/outcome hashes",
	}
	for _, spec := range specs {
		arm, err := runChaosArm(cfg, backend, spec, truth)
		if err != nil {
			return err
		}
		report.Arms = append(report.Arms, arm)
		fmt.Printf("%-30s avail %5.1f%%  goodput %5.1f%%  p99 %7.2fms  outage-p99 %7.2fms  stale %d  fastfail %d  stable=%v metrics_stable=%v\n",
			arm.Arm, 100*arm.Availability, 100*arm.Goodput, arm.P99Ms, arm.OutageP99Ms,
			arm.Proxy.StaleServed, arm.Proxy.BreakerFastFails, arm.TraceStable, arm.MetricsStable)
		fmt.Printf("%-30s %s\n", "", obsLine(arm.Metrics))
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.Out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", cfg.Out)
	return nil
}

// serveConfig adapts the chaos workload shape for setupServeLedger.
func (c chaosConfig) serveConfig() serveConfig {
	return serveConfig{
		Workers: c.Workers,
		IDs:     c.IDs,
		Batch:   c.Batch,
		Pages:   c.Pages,
		Revoked: c.Revoked,
		Zipf:    c.Zipf,
		Seed:    c.Seed,
	}
}
