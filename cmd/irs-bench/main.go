// Command irs-bench regenerates every table in the paper reproduction:
// one experiment per quantitative claim (the E1–E10 index in DESIGN.md)
// plus the design-choice ablations.
//
// Usage:
//
//	irs-bench -run all -scale full            # everything, full workloads
//	irs-bench -run e2,e4 -scale quick -seed 7 # a subset, fast
//	irs-bench -workers 8                      # pin the worker pool width
//	irs-bench -parallel-out BENCH_parallel.json -run e1,e5,e6 -scale quick,full
//	                                          # serial-vs-parallel timings
//	                                          # (comma-list sweeps scales)
//	irs-bench -serve -serve-out BENCH_serving.json
//	                                          # serving-path load harness
//	irs-bench -list                           # enumerate experiments
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"irs/internal/expt"
	"irs/internal/parallel"
	"irs/internal/wire"
)

// parseWireList parses the -wire flag: a comma list of codec names,
// deduplicated, order preserved.
func parseWireList(s string) ([]wire.Codec, error) {
	var codecs []wire.Codec
	seen := map[wire.Codec]bool{}
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, err := wire.ParseCodec(name)
		if err != nil {
			return nil, fmt.Errorf("-wire: %w", err)
		}
		if !seen[c] {
			seen[c] = true
			codecs = append(codecs, c)
		}
	}
	if len(codecs) == 0 {
		return nil, fmt.Errorf("-wire: empty codec list")
	}
	return codecs, nil
}

// parallelTiming is one row of the -parallel-out report: the same
// experiment timed at workers=1 and at the configured pool width, with
// a byte-compare of the rendered tables as a determinism check.
type parallelTiming struct {
	Experiment    string  `json:"experiment"`
	Scale         string  `json:"scale"`
	Seed          int64   `json:"seed"`
	Workers       int     `json:"workers"`
	SerialMs      float64 `json:"serial_ms"`
	ParallelMs    float64 `json:"parallel_ms"`
	Speedup       float64 `json:"speedup"`
	OutputMatches bool    `json:"output_matches"`
}

func main() {
	var (
		run     = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		scale   = flag.String("scale", "full", "workload scale: quick or full (with -parallel-out, a comma list sweeps)")
		seed    = flag.Int64("seed", 42, "random seed")
		list    = flag.Bool("list", false, "list experiments and exit")
		workers = flag.Int("workers", 0, "worker pool width (0 = IRS_WORKERS env or GOMAXPROCS)")
		parOut  = flag.String("parallel-out", "", "write serial-vs-parallel timings to this JSON file")

		serve        = flag.Bool("serve", false, "run the serving-path load harness instead of experiments")
		serveOut     = flag.String("serve-out", "BENCH_serving.json", "serving report path")
		serveWorkers = flag.Int("serve-workers", 8, "concurrent load-generator workers")
		serveIDs     = flag.Int("serve-ids", 4096, "claimed photo population per ledger")
		serveBatch   = flag.Int("serve-batch", 48, "identifiers per page (the browser model's page size)")
		servePages   = flag.Int("serve-pages", 60, "pages per worker per arm")
		serveRevoked = flag.Float64("serve-revoked", 0.1, "fraction of claims revoked at birth")
		serveZipf    = flag.Float64("serve-zipf", 1.1, "Zipf s parameter for view popularity (>1)")
		wireCodecs   = flag.String("wire", "json,binary", "comma-separated wire codecs for -serve and -topology arms (json|binary)")

		adversary        = flag.Bool("adversary", false, "run the adversarial workload suite (seeded attacks + benign control twins)")
		adversaryOut     = flag.String("adversary-out", "BENCH_adversary.json", "adversary report path")
		adversaryScaleF  = flag.String("adversary-scale", "full", "adversary workload scale: quick or full")
		adversaryEnforce = flag.Bool("adversary-enforce", true, "assert the wall-clock/availability envelope gates (decision gates always hold)")

		chaos       = flag.Bool("chaos", false, "run the fault-injection arm of the serving harness")
		chaosOut    = flag.String("chaos-out", "BENCH_chaos.json", "chaos report path")
		chaosOutage = flag.Float64("chaos-outage", 0.1, "fraction of each worker's pages inside the ledger outage window")

		obsCompare   = flag.Bool("obs-compare", false, "run the observability overhead guard (obs-on vs obs-off)")
		obsOut       = flag.String("obs-out", "BENCH_obs.json", "obs-compare report path")
		obsReps      = flag.Int("obs-reps", 3, "interleaved reps per arm (min-of-N p99)")
		obsTolerance = flag.Float64("obs-tolerance", 0.05, "allowed fractional p99 overhead of the instrumented arm")

		upload         = flag.Bool("upload", false, "run the upload-ingest (pipeline vs serial) harness")
		uploadOut      = flag.String("upload-out", "BENCH_upload.json", "upload report path")
		uploadBatches  = flag.String("upload-batches", "64,192", "comma-separated batch sizes")
		uploadWorkers  = flag.String("upload-workers", "1,2,4,8", "comma-separated pipeline worker counts")
		uploadDims     = flag.String("upload-dims", "192x128", "upload image dimensions WxH")
		uploadBaseline = flag.Float64("upload-baseline", 0, "externally measured serial images/sec for speedup_vs_baseline")

		storage        = flag.Bool("storage", false, "run the ledger storage-engine harness (segment engine vs legacy JSON)")
		storageOut     = flag.String("storage-out", "BENCH_storage.json", "storage report path")
		storageClaims  = flag.Int("storage-claims", 10_000_000, "claim population per engine")
		storageBatch   = flag.Int("storage-batch", 4096, "records per ingest batch")
		storageReads   = flag.Int("storage-reads", 20000, "point lookups for the read-latency phase")
		storageMem     = flag.Int("storage-memtable", 1_000_000, "segment engine memtable flush threshold (records)")
		storageEquiv   = flag.Int("storage-equiv", 100_000, "claims in the state-equivalence gate run")
		storageEngines = flag.String("storage-engines", "json,segments", "comma-separated engines to benchmark")
		storageDir     = flag.String("storage-dir", "", "scratch directory for ledger data (default: system temp, removed afterwards)")

		lookup        = flag.Bool("lookup", false, "run the derivative-lookup (hash DB) harness")
		lookupOut     = flag.String("lookup-out", "BENCH_lookup.json", "lookup report path")
		lookupSizes   = flag.String("lookup-sizes", "10000,100000,250000", "comma-separated hash-DB sizes")
		lookupWorkers = flag.String("lookup-workers", "1,4,8", "comma-separated client worker counts")
		lookupProbes  = flag.Int("lookup-probes", 2000, "probes per size×arm×workers cell")
		lookupHit     = flag.Float64("lookup-hit", 0.1, "fraction of probes that are near-threshold derivatives")

		topo          = flag.Bool("topology", false, "run the multi-tier filter/replica distribution harness")
		topoOut       = flag.String("topology-out", "BENCH_topology.json", "topology report path")
		topoBrowsers  = flag.Int("topology-browsers", 1_200_000, "simulated browser population (modelled in aggregate)")
		topoIDs       = flag.Int("topology-ids", 50_000, "claim population on the origin ledger")
		topoRevoked   = flag.Float64("topology-revoked", 0.08, "fraction of claims revoked at birth")
		topoRegionals = flag.Int("topology-regionals", 3, "regional tier width (replicas + filter caches)")
		topoEdges     = flag.Int("topology-edges", 4, "edge proxies per regional")
		topoIntervals = flag.String("topology-intervals", "30,60,120,300", "comma-separated sync intervals (seconds) to sweep")
		topoWindow    = flag.Int("topology-window", 1800, "virtual seconds simulated per arm")
		topoRevokes   = flag.Int("topology-revokes", 50, "mid-run revocations (staleness probes)")
		topoBatch     = flag.Int("topology-batch", 48, "identifiers per page")
		topoPages     = flag.Float64("topology-pages", 6, "page views per browser per hour")
		topoSample    = flag.Int("topology-sample", 4, "pages actually validated per edge per virtual second")
		topoZipf      = flag.Float64("topology-zipf", 1.1, "Zipf s parameter for view popularity (>1)")
	)
	flag.Parse()

	if *list {
		for _, e := range expt.All() {
			fmt.Println(e.ID)
		}
		return
	}
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}
	if *topo {
		intervals, err := parseIntList("-topology-intervals", *topoIntervals)
		var codecs []wire.Codec
		if err == nil {
			codecs, err = parseWireList(*wireCodecs)
		}
		if err == nil {
			err = runTopology(topologyConfig{
				Wire:         codecs,
				Out:          *topoOut,
				Browsers:     *topoBrowsers,
				IDs:          *topoIDs,
				Revoked:      *topoRevoked,
				Regionals:    *topoRegionals,
				Edges:        *topoEdges,
				Intervals:    intervals,
				WindowSec:    *topoWindow,
				Revokes:      *topoRevokes,
				PageSize:     *topoBatch,
				PagesPerHour: *topoPages,
				SamplePages:  *topoSample,
				Zipf:         *topoZipf,
				Seed:         *seed,
			})
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "irs-bench: topology: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *upload {
		batches, err := parseIntList("-upload-batches", *uploadBatches)
		if err == nil {
			var uw []int
			uw, err = parseIntList("-upload-workers", *uploadWorkers)
			if err == nil {
				var w, h int
				if _, serr := fmt.Sscanf(*uploadDims, "%dx%d", &w, &h); serr != nil || w < 32 || h < 32 {
					err = fmt.Errorf("bad -upload-dims %q", *uploadDims)
				} else {
					err = runUpload(uploadConfig{
						Out:      *uploadOut,
						Batches:  batches,
						Workers:  uw,
						Seed:     *seed,
						W:        w,
						H:        h,
						Baseline: *uploadBaseline,
					})
				}
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "irs-bench: upload: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *storage {
		engines := strings.Split(*storageEngines, ",")
		for i := range engines {
			engines[i] = strings.TrimSpace(engines[i])
		}
		err := runStorage(storageConfig{
			Out:         *storageOut,
			Claims:      *storageClaims,
			Batch:       *storageBatch,
			Reads:       *storageReads,
			Memtable:    *storageMem,
			EquivClaims: *storageEquiv,
			Engines:     engines,
			Seed:        *seed,
			Dir:         *storageDir,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "irs-bench: storage: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *lookup {
		sizes, err := parseIntList("-lookup-sizes", *lookupSizes)
		if err == nil {
			var lw []int
			lw, err = parseIntList("-lookup-workers", *lookupWorkers)
			if err == nil {
				err = runLookup(lookupConfig{
					Out:     *lookupOut,
					Sizes:   sizes,
					Workers: lw,
					Probes:  *lookupProbes,
					HitFrac: *lookupHit,
					Seed:    *seed,
				})
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "irs-bench: lookup: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *obsCompare {
		err := runObsCompare(obsConfig{
			Out:       *obsOut,
			Workers:   *serveWorkers,
			IDs:       *serveIDs,
			Batch:     *serveBatch,
			Pages:     *servePages,
			Revoked:   *serveRevoked,
			Zipf:      *serveZipf,
			Seed:      *seed,
			Reps:      *obsReps,
			Tolerance: *obsTolerance,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "irs-bench: obs-compare: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *adversary {
		cfg, err := adversaryScale(*adversaryScaleF, *seed, *adversaryOut, *adversaryEnforce)
		if err == nil {
			_, err = runAdversary(cfg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "irs-bench: adversary: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *chaos {
		err := runChaos(chaosConfig{
			Out:     *chaosOut,
			Workers: *serveWorkers,
			IDs:     *serveIDs,
			Batch:   *serveBatch,
			Pages:   *servePages,
			Revoked: *serveRevoked,
			Zipf:    *serveZipf,
			Outage:  *chaosOutage,
			Seed:    *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "irs-bench: chaos: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *serve {
		codecs, err := parseWireList(*wireCodecs)
		if err == nil {
			err = runServe(serveConfig{
				Out:     *serveOut,
				Workers: *serveWorkers,
				IDs:     *serveIDs,
				Batch:   *serveBatch,
				Pages:   *servePages,
				Revoked: *serveRevoked,
				Zipf:    *serveZipf,
				Seed:    *seed,
				Wire:    codecs,
			})
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "irs-bench: serve: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var scales []expt.Scale
	scaleNames := strings.Split(*scale, ",")
	for _, name := range scaleNames {
		switch strings.TrimSpace(name) {
		case "quick":
			scales = append(scales, expt.Quick)
		case "full":
			scales = append(scales, expt.Full)
		default:
			fmt.Fprintf(os.Stderr, "irs-bench: bad -scale %q (quick|full)\n", name)
			os.Exit(2)
		}
	}
	if len(scales) > 1 && *parOut == "" {
		fmt.Fprintf(os.Stderr, "irs-bench: a -scale sweep needs -parallel-out\n")
		os.Exit(2)
	}
	sc := scales[0]

	var selected []string
	if *run == "all" {
		for _, e := range expt.All() {
			selected = append(selected, e.ID)
		}
	} else {
		selected = strings.Split(*run, ",")
	}

	failed := false
	var timings []parallelTiming
	for _, id := range selected {
		id = strings.TrimSpace(id)
		runner, ok := expt.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "irs-bench: unknown experiment %q (use -list)\n", id)
			failed = true
			continue
		}
		if *parOut != "" {
			for si, scv := range scales {
				t, err := timeSerialVsParallel(id, runner, scv, *seed)
				if err != nil {
					fmt.Fprintf(os.Stderr, "irs-bench: %s: %v\n", id, err)
					failed = true
					continue
				}
				t.Scale = strings.TrimSpace(scaleNames[si])
				timings = append(timings, t)
				fmt.Printf("%s@%s: serial %.0fms, parallel %.0fms (%d workers, %.2fx, identical=%v)\n",
					t.Experiment, t.Scale, t.SerialMs, t.ParallelMs, t.Workers, t.Speedup, t.OutputMatches)
			}
			continue
		}
		start := time.Now()
		report, err := runner(sc, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "irs-bench: %s: %v\n", id, err)
			failed = true
			continue
		}
		report.Fprint(os.Stdout)
		fmt.Printf("(%s ran in %s at scale=%s seed=%d)\n\n", id, time.Since(start).Round(time.Millisecond), *scale, *seed)
	}
	if *parOut != "" && len(timings) > 0 {
		data, err := json.MarshalIndent(timings, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "irs-bench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*parOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "irs-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *parOut)
	}
	if failed {
		os.Exit(1)
	}
}

// timeSerialVsParallel runs one experiment at workers=1 and at the
// configured pool width, returning wall-clock for both plus whether the
// rendered reports are byte-identical (the pool's core contract).
func timeSerialVsParallel(id string, runner expt.Runner, sc expt.Scale, seed int64) (parallelTiming, error) {
	render := func(w int) (string, time.Duration, error) {
		prev := parallel.SetWorkers(w)
		defer parallel.SetWorkers(prev)
		start := time.Now()
		r, err := runner(sc, seed)
		if err != nil {
			return "", 0, err
		}
		var sb strings.Builder
		r.Fprint(&sb)
		return sb.String(), time.Since(start), nil
	}
	serialOut, serialDur, err := render(1)
	if err != nil {
		return parallelTiming{}, err
	}
	w := parallel.Workers()
	parOut, parDur, err := render(w)
	if err != nil {
		return parallelTiming{}, err
	}
	return parallelTiming{
		Experiment:    id,
		Seed:          seed,
		Workers:       w,
		SerialMs:      float64(serialDur.Microseconds()) / 1000,
		ParallelMs:    float64(parDur.Microseconds()) / 1000,
		Speedup:       float64(serialDur) / float64(parDur),
		OutputMatches: parOut == serialOut,
	}, nil
}
