// Command irs-bench regenerates every table in the paper reproduction:
// one experiment per quantitative claim (the E1–E10 index in DESIGN.md)
// plus the design-choice ablations.
//
// Usage:
//
//	irs-bench -run all -scale full            # everything, full workloads
//	irs-bench -run e2,e4 -scale quick -seed 7 # a subset, fast
//	irs-bench -list                           # enumerate experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"irs/internal/expt"
)

func main() {
	var (
		run   = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		scale = flag.String("scale", "full", "workload scale: quick or full")
		seed  = flag.Int64("seed", 42, "random seed")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range expt.All() {
			fmt.Println(e.ID)
		}
		return
	}
	var sc expt.Scale
	switch *scale {
	case "quick":
		sc = expt.Quick
	case "full":
		sc = expt.Full
	default:
		fmt.Fprintf(os.Stderr, "irs-bench: bad -scale %q (quick|full)\n", *scale)
		os.Exit(2)
	}

	var selected []string
	if *run == "all" {
		for _, e := range expt.All() {
			selected = append(selected, e.ID)
		}
	} else {
		selected = strings.Split(*run, ",")
	}

	failed := false
	for _, id := range selected {
		id = strings.TrimSpace(id)
		runner, ok := expt.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "irs-bench: unknown experiment %q (use -list)\n", id)
			failed = true
			continue
		}
		start := time.Now()
		report, err := runner(sc, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "irs-bench: %s: %v\n", id, err)
			failed = true
			continue
		}
		report.Fprint(os.Stdout)
		fmt.Printf("(%s ran in %s at scale=%s seed=%d)\n\n", id, time.Since(start).Round(time.Millisecond), *scale, *seed)
	}
	if failed {
		os.Exit(1)
	}
}
