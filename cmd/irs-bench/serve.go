package main

import (
	"bytes"
	"crypto/ed25519"
	crand "crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/obs"
	"irs/internal/parallel"
	"irs/internal/proxy"
	"irs/internal/wire"
)

// The -serve harness measures the validation serving path end to end:
// closed-loop workers play browsers validating pages of photo
// identifiers against a proxy Validator whose misses resolve through a
// real loopback HTTP ledger (or a direct in-process call, to isolate
// transport cost). Arms toggle the two serving-path changes
// independently — record-store sharding (ledger Shards=1 reproduces the
// old single-lock layout) and page batching (one StatusBatch POST per
// page vs one GET per image) — so the report attributes the win.
//
// The proxy runs with the cache and filter off: every validation
// traverses the full proxy → ledger path, which is the regime the
// optimization targets (filter hits never leave the proxy and are
// already lock-free).

// serveConfig carries the -serve-* flags.
type serveConfig struct {
	Out     string
	Workers int
	IDs     int
	Batch   int
	Pages   int
	Revoked float64
	Zipf    float64
	Seed    int64
	// Wire lists the codecs to run HTTP arms under (-wire). With more
	// than one, the identical-results gate runs before any timing.
	Wire []wire.Codec
}

// serveArm is one measured configuration.
type serveArm struct {
	Arm       string  `json:"arm"`
	Transport string  `json:"transport"`      // "http" or "direct"
	Wire      string  `json:"wire,omitempty"` // "json" or "binary" on http arms
	Batch     bool    `json:"batch"`
	Shards    int     `json:"shards"`
	Stripes   int     `json:"stripes"`
	Pages     int     `json:"pages"`
	PageSize  int     `json:"page_size"`
	IDsPerSec float64 `json:"ids_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MeanMs    float64 `json:"mean_ms"`
	WallMs    float64 `json:"wall_ms"`
	// Metrics is the arm's obs registry snapshot: the proxy's outcome
	// counters and stage latencies plus (on http arms) the wire client's
	// per-RPC series, all interned in one per-arm registry.
	Metrics []obs.SeriesSnapshot `json:"metrics,omitempty"`
}

// serveReport is the BENCH_serving.json document.
type serveReport struct {
	Seed       int64      `json:"seed"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Workers    int        `json:"workers"`
	IDs        int        `json:"ids"`
	Revoked    float64    `json:"revoked_fraction"`
	Zipf       float64    `json:"zipf_s"`
	Arms       []serveArm `json:"arms"`
	// Speedup is the headline: ids/sec of the full new path (batched
	// requests against the sharded ledger) over the old path (per-image
	// requests against the single-lock ledger), both over real HTTP.
	Speedup float64 `json:"speedup_batch_sharded_vs_per_id_single_lock"`
	// SpeedupWire compares the IRSW1 codec against JSON on the headline
	// arm (http/batch/sharded), and WireP99DeltaMs the p99 change
	// (negative = binary is faster). Zero when only one codec ran.
	SpeedupWire   float64 `json:"speedup_wire_binary_vs_json,omitempty"`
	WireP99Delta  float64 `json:"wire_p99_delta_ms,omitempty"`
	WireGatePages int     `json:"wire_gate_pages,omitempty"`
	Note          string  `json:"note"`
}

// serveLedger is one prepared backend: a populated ledger plus both
// transports. url lets arms build their own instrumented clients.
type serveLedger struct {
	l      *ledger.Ledger
	ids    []ids.PhotoID
	url    string
	http   *wire.Client
	direct *wire.Loopback
	close  func()
}

// setupServeLedger claims cfg.IDs photos (a deterministic fraction
// revoked at birth) on a ledger with the given shard count and exposes
// it over a loopback HTTP listener.
func setupServeLedger(cfg serveConfig, shards int) (*serveLedger, error) {
	l, err := ledger.New(ledger.Config{
		ID:     1,
		Shards: shards,
		Rand:   rand.New(rand.NewSource(cfg.Seed ^ 0x5e21)),
	})
	if err != nil {
		return nil, err
	}
	pub, priv, err := ed25519.GenerateKey(crand.Reader)
	if err != nil {
		l.Close()
		return nil, err
	}
	// Precompute hashes and owner signatures on the pool (the signing
	// dominates), then claim serially in index order.
	type claimInput struct {
		h   [32]byte
		sig []byte
	}
	inputs := make([]claimInput, cfg.IDs)
	parallel.ForChunks(cfg.IDs, 256, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], uint64(cfg.Seed)+uint64(i))
			h := sha256.Sum256(buf[:])
			inputs[i] = claimInput{h: h, sig: ed25519.Sign(priv, ledger.ClaimMsg(h))}
		}
	})
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x7ea2))
	population := make([]ids.PhotoID, cfg.IDs)
	for i, in := range inputs {
		rec, err := l.Claim(in.h, pub, in.sig, rng.Float64() < cfg.Revoked)
		if err != nil {
			l.Close()
			return nil, err
		}
		population[i] = rec.ID
	}

	srv := wire.NewServer(l, "")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		l.Close()
		return nil, err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	return &serveLedger{
		l:      l,
		ids:    population,
		url:    "http://" + ln.Addr().String(),
		http:   wire.NewClient("http://"+ln.Addr().String(), ""),
		direct: &wire.Loopback{L: l},
		close: func() {
			hs.Close()
			l.Close()
		},
	}, nil
}

// runServeArm drives one arm: cfg.Workers goroutines each validate
// cfg.Pages pages of cfg.Batch Zipf-drawn identifiers, per-image or
// batched, and record per-page latency.
func runServeArm(cfg serveConfig, name string, backend *serveLedger, transport string, codec wire.Codec, batch bool, shards, stripes int) (serveArm, error) {
	// One registry per arm: the proxy's outcome/latency series and (over
	// HTTP) the wire client's per-RPC series land together, so the arm's
	// Metrics block is self-contained and arms never share counters.
	reg := obs.NewRegistry()
	var svc wire.Service
	if transport == "http" {
		svc = wire.NewClientOpts(backend.url, "", wire.ClientOptions{Obs: reg, Codec: codec})
	} else {
		svc = backend.direct
	}
	v := proxy.NewValidator(proxy.Config{Stripes: stripes, Obs: reg}, func(id ids.PhotoID) (*ledger.StatusProof, error) {
		return svc.Status(id)
	})
	v.SetBatchQuery(func(_ ids.LedgerID, page []ids.PhotoID) ([]*ledger.StatusProof, error) {
		return svc.StatusBatch(page)
	})

	lats := make([][]time.Duration, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker deterministic draw sequence: worker w requests
			// the same pages in every arm, so arms differ only in path.
			rng := rand.New(rand.NewSource(parallel.SplitSeed(cfg.Seed, w)))
			zipf := rand.NewZipf(rng, cfg.Zipf, 1, uint64(len(backend.ids)-1))
			page := make([]ids.PhotoID, cfg.Batch)
			lats[w] = make([]time.Duration, 0, cfg.Pages)
			for p := 0; p < cfg.Pages; p++ {
				for i := range page {
					page[i] = backend.ids[zipf.Uint64()]
				}
				t0 := time.Now()
				if batch {
					if _, err := v.ValidateBatch(page); err != nil {
						errs[w] = err
						return
					}
				} else {
					for _, id := range page {
						if _, err := v.Validate(id); err != nil {
							errs[w] = err
							return
						}
					}
				}
				lats[w] = append(lats[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return serveArm{}, fmt.Errorf("%s: %w", name, err)
		}
	}

	var all []time.Duration
	for _, ws := range lats {
		all = append(all, ws...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return float64(all[int(p*float64(len(all)-1))].Microseconds()) / 1000
	}
	var sum time.Duration
	for _, d := range all {
		sum += d
	}
	mean := 0.0
	if len(all) > 0 {
		mean = float64(sum.Microseconds()) / float64(len(all)) / 1000
	}
	totalIDs := float64(len(all) * cfg.Batch)
	wireName := ""
	if transport == "http" {
		wireName = codec.String()
	}
	return serveArm{
		Metrics:   reg.Snapshot(),
		Arm:       name,
		Transport: transport,
		Wire:      wireName,
		Batch:     batch,
		Shards:    shards,
		Stripes:   stripes,
		Pages:     len(all),
		PageSize:  cfg.Batch,
		IDsPerSec: totalIDs / wall.Seconds(),
		P50Ms:     pct(0.50),
		P95Ms:     pct(0.95),
		P99Ms:     pct(0.99),
		MeanMs:    mean,
		WallMs:    float64(wall.Microseconds()) / 1000,
	}, nil
}

// wireGatePages is how many probe pages the identical-results gate
// replays under each codec before any timing arm runs.
const wireGatePages = 16

// runWireGate proves the codecs interchangeable before anything is
// timed: a fixed-clock ledger (so proofs are bit-reproducible) answers
// the same probe pages through a JSON-codec validator and an
// IRSW1-codec validator, and every decision and every proof must match
// byte for byte, with each proof verifying against the signing key.
func runWireGate(cfg serveConfig) (int, error) {
	fixed := time.Unix(1_700_000_000, 0).UTC()
	l, err := ledger.New(ledger.Config{
		ID:    1,
		Clock: func() time.Time { return fixed },
		Rand:  rand.New(rand.NewSource(cfg.Seed ^ 0x6a7e)),
	})
	if err != nil {
		return 0, err
	}
	defer l.Close()
	pub, priv, err := ed25519.GenerateKey(crand.Reader)
	if err != nil {
		return 0, err
	}
	population := make([]ids.PhotoID, 512)
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x3a1))
	for i := range population {
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(cfg.Seed)+uint64(i))
		h := sha256.Sum256(buf[:])
		rec, err := l.Claim(h, pub, ed25519.Sign(priv, ledger.ClaimMsg(h)), rng.Float64() < cfg.Revoked)
		if err != nil {
			return 0, err
		}
		population[i] = rec.ID
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	hs := &http.Server{Handler: wire.NewServer(l, "")}
	go hs.Serve(ln)
	defer hs.Close()
	url := "http://" + ln.Addr().String()

	mkValidator := func(codec wire.Codec) *proxy.Validator {
		c := wire.NewClientOpts(url, "", wire.ClientOptions{Codec: codec})
		v := proxy.NewValidator(proxy.Config{}, func(id ids.PhotoID) (*ledger.StatusProof, error) {
			return c.Status(id)
		})
		v.SetBatchQuery(func(_ ids.LedgerID, page []ids.PhotoID) ([]*ledger.StatusProof, error) {
			return c.StatusBatch(page)
		})
		return v
	}
	jv, bv := mkValidator(wire.CodecJSON), mkValidator(wire.CodecBinary)

	// The zero proxy.Config disables cache and filter, so every probe
	// traverses the wire both rounds; the second round matters because
	// the binary client only sends IRSW1 request bodies after the first
	// response advertised the codec.
	prng := rand.New(rand.NewSource(cfg.Seed ^ 0x11d))
	pages := 0
	for round := 0; round < 2; round++ {
		for p := 0; p < wireGatePages; p++ {
			page := make([]ids.PhotoID, cfg.Batch)
			for i := range page {
				page[i] = population[prng.Intn(len(population))]
			}
			jres, err := jv.ValidateBatch(page)
			if err != nil {
				return 0, fmt.Errorf("wire gate (json): %w", err)
			}
			bres, err := bv.ValidateBatch(page)
			if err != nil {
				return 0, fmt.Errorf("wire gate (binary): %w", err)
			}
			for i := range page {
				j, b := jres[i], bres[i]
				if j.State != b.State || (j.Proof == nil) != (b.Proof == nil) {
					return 0, fmt.Errorf("wire gate: page %d id %d: decisions differ (json %v, binary %v)",
						p, i, j.State, b.State)
				}
				if j.Proof != nil {
					jm, bm := j.Proof.Marshal(), b.Proof.Marshal()
					if !bytes.Equal(jm, bm) {
						return 0, fmt.Errorf("wire gate: page %d id %d: proof bytes differ across codecs", p, i)
					}
					if err := ledger.VerifyProof(l.SigningKey(), b.Proof, fixed, 0); err != nil {
						return 0, fmt.Errorf("wire gate: page %d id %d: binary proof does not verify: %w", p, i, err)
					}
				}
			}
			pages++
		}
	}
	return pages, nil
}

// runServe executes every arm and writes the report.
func runServe(cfg serveConfig) error {
	if len(cfg.Wire) == 0 {
		cfg.Wire = []wire.Codec{wire.CodecJSON}
	}

	// Identical-results gate before any timing: when the binary codec
	// is in play, it must be indistinguishable from JSON in decisions
	// and proofs or the comparison is meaningless.
	for _, c := range cfg.Wire {
		if c == wire.CodecBinary {
			pages, err := runWireGate(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("wire gate: %d probe pages, decisions and proofs byte-identical across codecs\n", pages)
			break
		}
	}

	single, err := setupServeLedger(cfg, 1)
	if err != nil {
		return err
	}
	defer single.close()
	sharded, err := setupServeLedger(cfg, 0) // 0 → the default shard count
	if err != nil {
		return err
	}
	defer sharded.close()

	type armSpec struct {
		name      string
		backend   *serveLedger
		transport string
		codec     wire.Codec
		batch     bool
		shards    int
		stripes   int
	}
	var arms []armSpec
	for _, codec := range cfg.Wire {
		suffix := ""
		if codec != wire.CodecJSON {
			suffix = "/wire=" + codec.String()
		}
		arms = append(arms,
			armSpec{"http/per-id/single-lock" + suffix, single, "http", codec, false, 1, 1},
			armSpec{"http/per-id/sharded" + suffix, sharded, "http", codec, false, 64, 16},
			armSpec{"http/batch/single-lock" + suffix, single, "http", codec, true, 1, 1},
			armSpec{"http/batch/sharded" + suffix, sharded, "http", codec, true, 64, 16},
		)
	}
	arms = append(arms,
		armSpec{"direct/per-id/sharded", sharded, "direct", wire.CodecJSON, false, 64, 16},
		armSpec{"direct/batch/sharded", sharded, "direct", wire.CodecJSON, true, 64, 16},
	)

	report := serveReport{
		Seed:       cfg.Seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    cfg.Workers,
		IDs:        cfg.IDs,
		Revoked:    cfg.Revoked,
		Zipf:       cfg.Zipf,
		Note: "closed loop: workers validate pages of Zipf-drawn ids through a proxy Validator " +
			"(cache and filter off) against a loopback ledger; per-id = one GET per image, " +
			"batch = one StatusBatch POST per page; wire=binary arms speak IRSW1 on the hot RPCs " +
			"behind an identical-decisions-and-proofs gate",
	}
	var baseline, headline float64
	var jsonHead, binHead *serveArm
	for _, a := range arms {
		res, err := runServeArm(cfg, a.name, a.backend, a.transport, a.codec, a.batch, a.shards, a.stripes)
		if err != nil {
			return err
		}
		report.Arms = append(report.Arms, res)
		last := &report.Arms[len(report.Arms)-1]
		switch a.name {
		case "http/per-id/single-lock":
			baseline = res.IDsPerSec
		case "http/batch/sharded":
			headline = res.IDsPerSec
			jsonHead = last
		case "http/batch/sharded/wire=binary":
			binHead = last
		}
		fmt.Printf("%-38s %9.0f ids/s  p50 %7.2fms  p95 %7.2fms  p99 %7.2fms\n",
			res.Arm, res.IDsPerSec, res.P50Ms, res.P95Ms, res.P99Ms)
		fmt.Printf("%-38s %s\n", "", obsLine(res.Metrics))
	}
	if baseline > 0 {
		report.Speedup = headline / baseline
	}
	fmt.Printf("speedup (http/batch/sharded vs http/per-id/single-lock): %.2fx\n", report.Speedup)
	if jsonHead != nil && binHead != nil && jsonHead.IDsPerSec > 0 {
		report.SpeedupWire = binHead.IDsPerSec / jsonHead.IDsPerSec
		report.WireP99Delta = binHead.P99Ms - jsonHead.P99Ms
		report.WireGatePages = 2 * wireGatePages
		fmt.Printf("wire codec (http/batch/sharded): binary %.2fx json QPS, p99 %+.2fms\n",
			report.SpeedupWire, report.WireP99Delta)
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.Out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", cfg.Out)
	return nil
}

// obsLine compresses a registry snapshot into one terminal line: the
// validation total, the ledger-query count, and the p99 of the
// ledger-query validation path (the latency these harnesses exercise).
func obsLine(snap []obs.SeriesSnapshot) string {
	total, _ := obs.Value(snap, "irs_proxy_validations_total")
	queries, _ := obs.Value(snap, "irs_proxy_outcomes_total", obs.L("outcome", "ledger_query"))
	if h, ok := obs.Hist(snap, "irs_proxy_validate_seconds", obs.L("outcome", "ledger_query")); ok && h.Count > 0 {
		return fmt.Sprintf("obs: validations=%.0f ledger_queries=%.0f validate_p99=%.2fms",
			total, queries, h.P99*1000)
	}
	return fmt.Sprintf("obs: validations=%.0f ledger_queries=%.0f", total, queries)
}
