package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestAdversaryQuickDeterministicAndGated runs the quick-scale
// adversarial suite in-process and pins the properties the committed
// BENCH_adversary.json relies on:
//
//   - every sub-arm is trace-stable (two same-seed runs produce
//     identical decision hashes) — runAdversary errors otherwise;
//   - every scheduling-independent decision gate holds at quick scale
//     (the two wall-clock p99 ratio gates are machine-dependent and are
//     only asserted by the full-scale enforced bench run);
//   - the report round-trips through the JSON file the flag writes.
func TestAdversaryQuickDeterministicAndGated(t *testing.T) {
	if testing.Short() {
		t.Skip("adversary suite is a multi-second workload")
	}
	out := filepath.Join(t.TempDir(), "adv.json")
	cfg, err := adversaryScale("quick", 42, out, false)
	if err != nil {
		t.Fatal(err)
	}
	report, err := runAdversary(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, a := range report.Arms {
		if !a.TraceStable {
			t.Errorf("arm %s (control=%v) not trace-stable", a.Arm, a.Control)
		}
		if a.DecisionHash == "" {
			t.Errorf("arm %s (control=%v) has no decision hash", a.Arm, a.Control)
		}
	}

	// Decision gates: deterministic at any scale on any machine.
	for _, gate := range []string{
		"index_keyed_candidates_10x_below_unkeyed",
		"herd_at_most_one_failure_per_wave",
		"herd_collateral_unharmed",
		"stampede_admission_benign_availability_99",
		"stampede_admission_denies_flood",
		"stampede_unthrottled_flood_degrades_benign",
		"stampede_benign_twin_fully_served",
		"race_conservation_and_no_dead_id_denials",
	} {
		ok, present := report.Gates[gate]
		if !present {
			t.Errorf("gate %s missing from report", gate)
		} else if !ok {
			t.Errorf("gate %s failed at quick scale", gate)
		}
	}
	// The timing gates must at least be computed and recorded.
	for _, gate := range []string{
		"index_unkeyed_p99_degrades_10x",
		"index_keyed_p99_within_2x_of_benign",
	} {
		if _, present := report.Gates[gate]; !present {
			t.Errorf("timing gate %s missing from report", gate)
		}
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report file not written: %v", err)
	}
	var onDisk advReport
	if err := json.Unmarshal(raw, &onDisk); err != nil {
		t.Fatalf("report file is not valid JSON: %v", err)
	}
	if len(onDisk.Arms) != len(report.Arms) {
		t.Fatalf("file has %d arms, in-process report has %d", len(onDisk.Arms), len(report.Arms))
	}
	for i := range onDisk.Arms {
		if onDisk.Arms[i].DecisionHash != report.Arms[i].DecisionHash {
			t.Errorf("arm %s decision hash diverges between file and report", onDisk.Arms[i].Arm)
		}
	}
}
