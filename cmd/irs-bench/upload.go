package main

// The -upload arm measures the §3.2 upload ingest end to end: IRSP
// decode, label extraction (aligned watermark read), the three-hash
// perceptual signature, ledger status, derivative check, and hosting.
// It sweeps batch size × worker count over two arms:
//
//	serial    photo.DecodeIRSP + Aggregator.Upload in a loop — the
//	          pre-pipeline reference path
//	pipeline  Aggregator.UploadAll (the bounded-channel backpressured
//	          stage graph) at each worker count
//
// Before any timing is trusted, the harness replays the batch through
// both arms against fresh aggregators and asserts the full decision
// sequence — accept/deny reason, hosted identifier, per-item decode
// error — is identical. The corpus is decision-diverse on purpose:
// labeled-active uploads dominate, with revoked, mismatched, partially
// labeled, unlabeled, relabeled-derivative, and malformed items mixed
// in at fixed ratios, so the gate exercises every branch the pipeline
// reorders around.
//
// -upload-baseline optionally records an externally measured serial
// throughput (images/sec) — e.g. the same corpus pushed through the
// pre-vectorization tree — and reports speedup_vs_baseline against it.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"irs/internal/aggregator"
	"irs/internal/camera"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/obs"
	"irs/internal/photo"
	"irs/internal/watermark"
	"irs/internal/wire"
)

type uploadConfig struct {
	Out      string
	Batches  []int
	Workers  []int
	Seed     int64
	W, H     int
	Baseline float64 // externally measured serial images/sec, 0 = none
}

type uploadRow struct {
	Batch              int          `json:"batch"`
	Arm                string       `json:"arm"`
	Workers            int          `json:"workers,omitempty"`
	TotalMs            float64      `json:"total_ms"`
	ImagesPerSec       float64      `json:"images_per_sec"`
	SpeedupVsSerial    float64      `json:"speedup_vs_serial,omitempty"`
	SpeedupVsBaseline  float64      `json:"speedup_vs_baseline,omitempty"`
	Accepted           int          `json:"accepted"`
	Denied             int          `json:"denied"`
	ItemErrors         int          `json:"item_errors"`
	DecisionsIdentical bool         `json:"decisions_identical"`
	Stages             []uploadStat `json:"stages,omitempty"`
}

// uploadStat is one stage's latency profile from the pipeline's obs
// histograms (milliseconds).
type uploadStat struct {
	Stage string  `json:"stage"`
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

type uploadReport struct {
	Seed               int64       `json:"seed"`
	Width              int         `json:"width"`
	Height             int         `json:"height"`
	BaselineImagesSec  float64     `json:"baseline_images_per_sec,omitempty"`
	DecisionsIdentical bool        `json:"decisions_identical"`
	Rows               []uploadRow `json:"rows"`
}

// uploadRig is the in-process ledger + camera fixture the corpus is
// claimed against; every timing run gets a fresh aggregator over the
// same directory so ledger state is shared and local state is not.
type uploadRig struct {
	owner *ledger.Ledger
	cust  *ledger.Ledger
	dir   *wire.Directory
	cam   *camera.Camera
}

func newUploadRig(seed int64) (*uploadRig, error) {
	ol, err := ledger.New(ledger.Config{ID: 1, Rand: rand.New(rand.NewSource(seed))})
	if err != nil {
		return nil, err
	}
	cl, err := ledger.New(ledger.Config{ID: 2, Rand: rand.New(rand.NewSource(seed + 1))})
	if err != nil {
		return nil, err
	}
	dir := wire.NewDirectory()
	dir.Register(1, &wire.Loopback{L: ol})
	dir.Register(2, &wire.Loopback{L: cl})
	return &uploadRig{
		owner: ol,
		cust:  cl,
		dir:   dir,
		cam:   camera.New(&wire.Loopback{L: ol}, "local://1", nil),
	}, nil
}

func (r *uploadRig) close() { r.owner.Close(); r.cust.Close() }

func (r *uploadRig) newAggregator() (*aggregator.Aggregator, error) {
	return aggregator.New(aggregator.Config{
		Name:               "bench",
		Unlabeled:          aggregator.RejectUnlabeled,
		CustodialLedger:    &wire.Loopback{L: r.cust},
		CustodialLedgerURL: "local://2",
		RecheckInterval:    time.Hour,
	}, r.dir)
}

// uploadCorpus builds n raw IRSP items: ~76% labeled active, 6%
// revoked, 6% unlabeled, 4% label-mismatched, 4% relabeled derivatives
// of earlier accepts, 2% metadata-stripped, 2% malformed bytes.
func uploadCorpus(r *uploadRig, n, w, h int, seed int64) ([]aggregator.UploadItem, error) {
	encode := func(im *photo.Image) (aggregator.UploadItem, error) {
		var buf bytes.Buffer
		if err := photo.EncodeIRSP(&buf, im); err != nil {
			return aggregator.UploadItem{}, err
		}
		return aggregator.UploadItem{Raw: buf.Bytes()}, nil
	}
	items := make([]aggregator.UploadItem, 0, n)
	var lastAccept *photo.Image
	for i := 0; i < n; i++ {
		s := seed + int64(i)
		var im *photo.Image
		switch {
		case i%50 == 49: // malformed container
			items = append(items, aggregator.UploadItem{Raw: []byte("corrupt frame")})
			continue
		case i%50 == 24: // metadata stripped → partial label
			labeled, _, err := r.cam.ClaimAndLabel(r.cam.Shoot(s, w, h))
			if err != nil {
				return nil, err
			}
			if im, err = photo.StripViaPNM(labeled); err != nil {
				return nil, err
			}
		case i%25 == 11: // revoked at birth
			labeled, owned, err := r.cam.ClaimAndLabel(r.cam.Shoot(s, w, h))
			if err != nil {
				return nil, err
			}
			if err := r.cam.Revoke(owned.ID); err != nil {
				return nil, err
			}
			im = labeled
		case i%25 == 17: // unlabeled
			im = photo.Synth(s, w, h)
		case i%25 == 5: // metadata swapped → label mismatch
			labeled, _, err := r.cam.ClaimAndLabel(r.cam.Shoot(s, w, h))
			if err != nil {
				return nil, err
			}
			other, err := ids.New(1)
			if err != nil {
				return nil, err
			}
			im = labeled.Clone()
			im.Meta.Set(photo.KeyIRSID, other.String())
		case i%25 == 20 && lastAccept != nil: // relabeled derivative
			erased, err := watermark.Erase(lastAccept, watermark.DefaultConfig(), 1)
			if err != nil {
				return nil, err
			}
			relabeled, _, err := r.cam.ClaimAndLabel(erased)
			if err != nil {
				return nil, err
			}
			im = relabeled
		default:
			labeled, _, err := r.cam.ClaimAndLabel(r.cam.Shoot(s, w, h))
			if err != nil {
				return nil, err
			}
			im = labeled
			lastAccept = labeled
		}
		item, err := encode(im)
		if err != nil {
			return nil, err
		}
		items = append(items, item)
	}
	return items, nil
}

// uploadDecision is the comparable outcome of one item.
type uploadDecision struct {
	accepted bool
	reason   aggregator.DenyReason
	id       ids.PhotoID
	failed   bool
}

func runSerial(agg *aggregator.Aggregator, items []aggregator.UploadItem) ([]uploadDecision, time.Duration) {
	decisions := make([]uploadDecision, len(items))
	start := time.Now()
	for i, it := range items {
		im, err := photo.DecodeIRSP(bytes.NewReader(it.Raw))
		if err != nil {
			decisions[i] = uploadDecision{failed: true}
			continue
		}
		res, err := agg.Upload(im)
		decisions[i] = uploadDecision{
			accepted: res.Accepted, reason: res.Reason, id: res.ID, failed: err != nil,
		}
	}
	return decisions, time.Since(start)
}

func runPipelined(agg *aggregator.Aggregator, items []aggregator.UploadItem, workers int, reg *obs.Registry) ([]uploadDecision, time.Duration) {
	decisions := make([]uploadDecision, len(items))
	start := time.Now()
	results := agg.UploadAll(context.Background(), items, aggregator.PipelineConfig{Workers: workers, Obs: reg})
	elapsed := time.Since(start)
	for i, res := range results {
		decisions[i] = uploadDecision{
			accepted: res.Result.Accepted, reason: res.Result.Reason,
			id: res.Result.ID, failed: res.Err != nil,
		}
	}
	return decisions, elapsed
}

func tallyDecisions(ds []uploadDecision) (accepted, denied, errs int) {
	for _, d := range ds {
		switch {
		case d.failed:
			errs++
		case d.accepted:
			accepted++
		default:
			denied++
		}
	}
	return
}

func runUpload(cfg uploadConfig) error {
	report := uploadReport{
		Seed: cfg.Seed, Width: cfg.W, Height: cfg.H,
		BaselineImagesSec: cfg.Baseline, DecisionsIdentical: true,
	}
	rig, err := newUploadRig(cfg.Seed)
	if err != nil {
		return err
	}
	defer rig.close()

	for _, batch := range cfg.Batches {
		items, err := uploadCorpus(rig, batch, cfg.W, cfg.H, cfg.Seed+int64(batch)*1000)
		if err != nil {
			return fmt.Errorf("batch %d corpus: %w", batch, err)
		}

		// Correctness gate first: the pipeline must reproduce the serial
		// decision sequence at every worker count before timings count.
		gateAgg, err := rig.newAggregator()
		if err != nil {
			return err
		}
		ref, _ := runSerial(gateAgg, items)
		for _, workers := range cfg.Workers {
			agg, err := rig.newAggregator()
			if err != nil {
				return err
			}
			got, _ := runPipelined(agg, items, workers, nil)
			for i := range ref {
				if got[i] != ref[i] {
					report.DecisionsIdentical = false
					return fmt.Errorf("batch %d workers %d: decision %d diverged: pipeline %+v, serial %+v",
						batch, workers, i, got[i], ref[i])
				}
			}
		}

		// Timed serial arm.
		agg, err := rig.newAggregator()
		if err != nil {
			return err
		}
		ds, elapsed := runSerial(agg, items)
		acc, den, errs := tallyDecisions(ds)
		serialRate := float64(batch) / elapsed.Seconds()
		row := uploadRow{
			Batch: batch, Arm: "serial", TotalMs: float64(elapsed.Microseconds()) / 1000,
			ImagesPerSec: serialRate, Accepted: acc, Denied: den, ItemErrors: errs,
			DecisionsIdentical: true,
		}
		if cfg.Baseline > 0 {
			row.SpeedupVsBaseline = serialRate / cfg.Baseline
		}
		report.Rows = append(report.Rows, row)
		fmt.Printf("upload batch=%d serial: %.1f images/sec\n", batch, serialRate)

		// Timed pipeline arm per worker count.
		for _, workers := range cfg.Workers {
			agg, err := rig.newAggregator()
			if err != nil {
				return err
			}
			reg := obs.NewRegistry()
			ds, elapsed := runPipelined(agg, items, workers, reg)
			acc, den, errs := tallyDecisions(ds)
			rate := float64(batch) / elapsed.Seconds()
			row := uploadRow{
				Batch: batch, Arm: "pipeline", Workers: workers,
				TotalMs: float64(elapsed.Microseconds()) / 1000, ImagesPerSec: rate,
				SpeedupVsSerial: rate / serialRate,
				Accepted:        acc, Denied: den, ItemErrors: errs,
				DecisionsIdentical: true,
			}
			if cfg.Baseline > 0 {
				row.SpeedupVsBaseline = rate / cfg.Baseline
			}
			row.Stages = stageStats(reg)
			report.Rows = append(report.Rows, row)
			fmt.Printf("upload batch=%d pipeline workers=%d: %.1f images/sec (%.2fx serial)\n",
				batch, workers, rate, rate/serialRate)
		}
	}

	f, err := os.Create(cfg.Out)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(&report)
}

// stageStats reads back the pipeline's per-stage latency histograms.
// Interning the same series returns the instruments the run populated.
func stageStats(reg *obs.Registry) []uploadStat {
	var stats []uploadStat
	for _, name := range []string{"decode", "label", "hash", "status", "commit"} {
		h := reg.Histogram("irs_upload_stage_seconds", nil, obs.L("stage", name))
		snap := h.Snapshot()
		if snap.Count == 0 {
			continue
		}
		stats = append(stats, uploadStat{
			Stage: name,
			Count: snap.Count,
			P50Ms: snap.Quantile(0.50) * 1000,
			P95Ms: snap.Quantile(0.95) * 1000,
			P99Ms: snap.Quantile(0.99) * 1000,
		})
	}
	return stats
}
