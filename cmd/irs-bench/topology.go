package main

import (
	"bytes"
	"crypto/ed25519"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/netsim"
	"irs/internal/obs"
	"irs/internal/topology"
	"irs/internal/tsa"
	"irs/internal/wire"
)

// The -topology harness measures the tradeoff the multi-tier
// deployment buys: filter staleness (how long a fresh revocation takes
// to reach the edge filters, growing one sync interval per hop) versus
// origin ledger load (what fraction of the browser population's
// traffic ever touches the authoritative ledger).
//
// The simulation runs in virtual time on the netsim scheduler, so WAN
// latencies, losses and sync cadences are deterministic under -seed.
// Browsers are modelled in aggregate: each edge carries its share of
// the -topology-browsers population as an arithmetic page-arrival
// rate, and a bounded sample of pages per tick is actually validated —
// Zipf-drawn identifier pages tested against the edge's filter, with
// filter-positive identifiers resolved by a StatusBatch read over a
// netsim.Faulty WAN link. Sampled outcomes are weighted back up to the
// full arrival rate, so reported QPS and availability describe the
// whole population while the simulation stays tractable.
//
// Arms:
//
//   - tiered@I: origin → R regional replicas → R×E edges. Filters flow
//     origin ledger → regional FilterCache → edge FilterCache via the
//     versioned sync protocol (size-gated deltas, snapshot fallback);
//     records flow through signed checkpoint shipping, and every
//     replica must pass the StateHash gate before its reads count.
//     Swept over -topology-intervals for the tradeoff curve.
//
//   - flat: one proxy tier pulling filters straight from the origin at
//     the fixed baseline interval, resolving every filter-positive
//     identifier at the origin itself. This is the PR-6 deployment
//     shape, and the denominator of the headline.
//
// Mid-run, -topology-revokes claims are revoked at the origin; each
// (revocation, edge) pair yields one staleness sample when an edge
// first installs a filter that flags the revoked claim.

// topologyConfig carries the -topology-* flags.
type topologyConfig struct {
	Out          string
	Browsers     int
	IDs          int
	Revoked      float64
	Regionals    int
	Edges        int // per regional
	Intervals    []int
	WindowSec    int
	Revokes      int
	PageSize     int
	PagesPerHour float64
	SamplePages  int // validated pages per edge per tick
	Zipf         float64
	Seed         int64
	// Wire lists the codecs to run the resolution plane under (-wire);
	// codec twins of an arm replay identical traffic, differing only in
	// serialized bytes.
	Wire []wire.Codec
}

// topologyArm is one measured configuration.
type topologyArm struct {
	Arm         string `json:"arm"`
	IntervalSec int    `json:"interval_sec"`
	// Origin load: every request that reached the origin ledger —
	// weighted StatusBatch resolutions (flat arm) plus filter syncs and
	// checkpoint/log fetches (both arms).
	OriginQPS      float64 `json:"origin_qps"`
	OriginRequests float64 `json:"origin_requests"`
	// Replica load: weighted StatusBatch resolutions served by the
	// regional replicas (tiered arms only).
	ReplicaQPS float64 `json:"replica_qps"`
	// Availability: weighted fraction of page views fully served
	// (every filter-positive identifier resolved).
	Availability float64 `json:"availability"`
	// Staleness: revocation→edge-filter lag over (revocation, edge)
	// pairs.
	StalenessMeanSec float64 `json:"staleness_mean_sec"`
	StalenessP95Sec  float64 `json:"staleness_p95_sec"`
	StalenessSamples int     `json:"staleness_samples"`
	// Filter plane bytes moved (all hops) and what they were.
	SyncBytes     uint64  `json:"filter_sync_bytes"`
	ResolveP95Ms  float64 `json:"resolve_p95_ms"`
	PagesModelled float64 `json:"pages_modelled"`
	PagesSampled  int     `json:"pages_sampled"`
	// Resolution plane wire accounting: the codec every sampled
	// StatusBatch round-trip was serialized under, the bytes that cost,
	// and (IRSW1 arms) how many decoded proofs the in-sim gate verified
	// byte-identical against the direct answer.
	Wire             string `json:"wire"`
	ResolveWireBytes uint64 `json:"resolve_wire_bytes"`
	WireGateProofs   int    `json:"wire_gate_proofs,omitempty"`
	// ReplicaGate records the StateHash equivalence check that ran
	// before any replica read was timed.
	ReplicaGate *topologyGate        `json:"replica_gate,omitempty"`
	Metrics     []obs.SeriesSnapshot `json:"metrics,omitempty"`
}

// topologyGate is the pre-timing replica admission check.
type topologyGate struct {
	Replicas       int  `json:"replicas"`
	AllReady       bool `json:"all_ready"`
	StateHashMatch bool `json:"state_hash_match"`
}

// topologyReport is the BENCH_topology.json document.
type topologyReport struct {
	Seed         int64         `json:"seed"`
	GOMAXPROCS   int           `json:"gomaxprocs"`
	Browsers     int           `json:"browsers"`
	IDs          int           `json:"ids"`
	Revoked      float64       `json:"revoked_fraction"`
	Regionals    int           `json:"regionals"`
	EdgesPer     int           `json:"edges_per_regional"`
	PageSize     int           `json:"page_size"`
	PagesPerHour float64       `json:"pages_per_browser_hour"`
	Zipf         float64       `json:"zipf_s"`
	WindowSec    int           `json:"window_sec"`
	Revokes      int           `json:"revokes"`
	Arms         []topologyArm `json:"arms"`
	// The headline: origin QPS of the flat single-proxy deployment over
	// the tiered deployment at the same (baseline) sync interval, at
	// equal availability.
	OriginLoadReduction float64 `json:"origin_qps_reduction_tiered_vs_flat"`
	AvailabilityDelta   float64 `json:"availability_delta_flat_minus_tiered"`
	// WireResolveBytesRatio compares resolution-plane bytes (JSON over
	// IRSW1) at the baseline tiered interval, after the codec-twin gate
	// confirmed identical decisions. Zero when only one codec ran.
	WireResolveBytesRatio float64 `json:"wire_resolve_bytes_json_over_binary,omitempty"`
	Note                  string  `json:"note"`
}

// baselineIntervalSec is the sync cadence of the flat arm and of the
// tiered arm the headline compares it against.
const baselineIntervalSec = 60

// fabTopologyRecords builds the claim population: fully formed records
// (StateHash canonicalizes every field) with revocations spread
// pseudo-uniformly across the index space so Zipf popularity and
// revocation state stay independent.
func fabTopologyRecords(lid ids.LedgerID, n int, revokedFrac float64, rng *rand.Rand) ([]ledger.Record, error) {
	recs := make([]ledger.Record, n)
	cut := uint32(revokedFrac * 1000)
	for i := range recs {
		id, err := ids.NewFrom(lid, rng)
		if err != nil {
			return nil, err
		}
		r := &recs[i]
		r.ID = id
		r.PubKey = make([]byte, ed25519.PublicKeySize)
		rng.Read(r.PubKey)
		r.HashSig = make([]byte, ed25519.SignatureSize)
		rng.Read(r.HashSig)
		rng.Read(r.ContentHash[:])
		sig := make([]byte, ed25519.SignatureSize)
		rng.Read(sig)
		r.Timestamp = &tsa.Token{Serial: uint64(i), Time: time.Unix(1700000000+int64(i), 0).UTC(), Sig: sig}
		rng.Read(r.Timestamp.Digest[:])
		r.State = ledger.StateActive
		if uint32(i)*2654435761%1000 < cut {
			r.State = ledger.StateRevoked
		}
	}
	return recs, nil
}

// revocationEvent is one mid-run revocation at the origin.
type revocationEvent struct {
	idx int           // population index
	key uint64        // ledger.FilterKey of the claim
	at  time.Duration // virtual revocation time
}

// planRevocations picks cfg.Revokes active claims and spreads their
// revocation times across the first 60% of the window, leaving every
// sync interval in the sweep room to propagate before the window ends.
func planRevocations(cfg topologyConfig, recs []ledger.Record, rng *rand.Rand) []revocationEvent {
	evs := make([]revocationEvent, 0, cfg.Revokes)
	seen := make(map[int]bool)
	for len(evs) < cfg.Revokes {
		idx := rng.Intn(len(recs))
		if seen[idx] || recs[idx].State != ledger.StateActive {
			continue
		}
		seen[idx] = true
		at := time.Duration(float64(cfg.WindowSec) * 0.6 * rng.Float64() * float64(time.Second))
		evs = append(evs, revocationEvent{idx: idx, key: ledger.FilterKey(recs[idx].ID), at: at})
	}
	sort.Slice(evs, func(a, b int) bool { return evs[a].at < evs[b].at })
	return evs
}

// wanLink wraps a Faulty link with virtual-latency accounting.
type wanLink struct {
	f     *netsim.Faulty
	sched *netsim.Scheduler
}

func newWANLink(sched *netsim.Scheduler, median time.Duration, loss float64, seed int64) (*wanLink, error) {
	link := netsim.NewLink(sched, netsim.LogNormal{Median: median, Sigma: 0.3}, 1<<14)
	f, err := netsim.NewFaulty(link, netsim.FaultConfig{Seed: seed, LossProb: loss})
	if err != nil {
		return nil, err
	}
	return &wanLink{f: f, sched: sched}, nil
}

// request schedules done(err, rtt) after the link's sampled latency
// (or the loss surfaces as a non-nil err).
func (w *wanLink) request(done func(err error, rtt time.Duration)) {
	start := w.sched.Now()
	w.f.Request(func(err error) { done(err, w.sched.Now()-start) })
}

// wireResolve performs one StatusBatch resolution with the exchange
// serialized under the arm's codec: the request and the response are
// actually encoded, their bytes accounted to the resolution plane, and
// under IRSW1 the response is decoded back with every proof required
// byte-identical to the directly returned one — the sim's form of the
// identical-results gate. Codec or gate failures panic (they are
// harness invariant violations, not simulated faults); the returned
// error is the backend query's.
func wireResolve(codec wire.Codec, q func([]ids.PhotoID) ([]*ledger.StatusProof, error),
	batch []ids.PhotoID, wireBytes *uint64, gateProofs *int) error {
	if codec == wire.CodecBinary {
		buf := wire.GetBuf()
		defer wire.PutBuf(buf)
		*buf = wire.EncodeStatusBatchReq((*buf)[:0], batch)
		*wireBytes += uint64(len(*buf))
		proofs, err := q(batch)
		if err != nil {
			return err
		}
		*buf = wire.EncodeStatusBatchResp((*buf)[:0], proofs)
		*wireBytes += uint64(len(*buf))
		kind, payload, derr := wire.DecodeMsg(*buf, wire.MaxFramePayload)
		if derr != nil || kind != wire.MsgStatusBatchResp {
			panic(fmt.Sprintf("topology: IRSW1 self-decode: kind %d err %v", kind, derr))
		}
		n, derr := wire.DecodeStatusBatchResp(payload, func(i int, raw []byte) error {
			if !bytes.Equal(raw, proofs[i].Marshal()) {
				return fmt.Errorf("proof %d differs from the direct answer", i)
			}
			return nil
		})
		if derr != nil || n != len(proofs) {
			panic(fmt.Sprintf("topology: IRSW1 gate: n=%d err %v", n, derr))
		}
		*gateProofs += n
		return nil
	}
	req := wire.StatusBatchRequest{IDs: make([]string, len(batch))}
	for i, id := range batch {
		req.IDs[i] = id.String()
	}
	doc, merr := json.Marshal(&req)
	if merr != nil {
		panic(fmt.Sprintf("topology: JSON request encode: %v", merr))
	}
	*wireBytes += uint64(len(doc))
	proofs, err := q(batch)
	if err != nil {
		return err
	}
	resp := wire.StatusBatchResponse{Proofs: make([][]byte, len(proofs))}
	for i, p := range proofs {
		if p != nil {
			resp.Proofs[i] = p.Marshal()
		}
	}
	doc, merr = json.Marshal(&resp)
	if merr != nil {
		panic(fmt.Sprintf("topology: JSON response encode: %v", merr))
	}
	*wireBytes += uint64(len(doc))
	return nil
}

// edgeSim is the per-edge serving state of one arm.
type edgeSim struct {
	fc       *topology.FilterCache
	rng      *rand.Rand
	zipf     *rand.Zipf
	link     *wanLink // resolution + filter-pull WAN hop
	seenRevs map[int]bool
}

// installCheck records staleness samples for every planned revocation
// the edge's newest filter now flags.
func (e *edgeSim) installCheck(now time.Duration, revs []revocationEvent, samples *[]float64) {
	_, f, ok := e.fc.Latest()
	if !ok {
		return
	}
	for i := range revs {
		if revs[i].at > now || e.seenRevs[revs[i].idx] {
			continue
		}
		if f.Test(revs[i].key) {
			e.seenRevs[revs[i].idx] = true
			*samples = append(*samples, (now - revs[i].at).Seconds())
		}
	}
}

// runTopologyArm simulates one arm over the window. flat selects the
// single-proxy baseline shape; intervalSec is the filter/replica sync
// cadence of every hop; codec is the serialization the resolution
// plane is accounted (and, for IRSW1, gate-checked) under. The arm
// seed deliberately excludes the codec, so codec twins replay
// identical traffic and must land identical decisions.
func runTopologyArm(cfg topologyConfig, intervalSec int, flat bool, codec wire.Codec) (topologyArm, error) {
	arm := topologyArm{IntervalSec: intervalSec, Wire: codec.String()}
	suffix := ""
	if codec != wire.CodecJSON {
		suffix = "/wire=" + codec.String()
	}
	if flat {
		arm.Arm = "flat" + suffix
	} else {
		arm.Arm = fmt.Sprintf("tiered@%ds%s", intervalSec, suffix)
	}
	armSeed := cfg.Seed ^ int64(intervalSec)<<16
	if flat {
		armSeed ^= 0x0f1a7
	}
	rng := rand.New(rand.NewSource(armSeed))

	reg := obs.NewRegistry()
	l, err := ledger.New(ledger.Config{ID: 1, Rand: rand.New(rand.NewSource(armSeed ^ 0x1ed9e4))})
	if err != nil {
		return arm, err
	}
	defer l.Close()
	recs, err := fabTopologyRecords(1, cfg.IDs, cfg.Revoked, rng)
	if err != nil {
		return arm, err
	}
	origin, err := topology.NewOrigin(l, reg)
	if err != nil {
		return arm, err
	}
	if err := origin.Restore(recs); err != nil {
		return arm, err
	}
	if _, err := l.BuildSnapshot(); err != nil {
		return arm, err
	}
	revs := planRevocations(cfg, recs, rng)

	sched := netsim.NewScheduler(armSeed ^ 0x5c4ed)
	interval := time.Duration(intervalSec) * time.Second
	window := time.Duration(cfg.WindowSec) * time.Second
	const tick = time.Second

	// Topology shape. The flat arm is one proxy carrying the whole
	// population, syncing and resolving directly against the origin.
	nRegionals, nEdgesPer := cfg.Regionals, cfg.Edges
	if flat {
		nRegionals, nEdgesPer = 1, 1
	}
	nEdges := nRegionals * nEdgesPer
	browsersPerEdge := float64(cfg.Browsers) / float64(nEdges)
	pagesPerEdgeTick := browsersPerEdge * cfg.PagesPerHour / 3600 * tick.Seconds()

	// Counters. Weighted counts scale sampled pages back up to the full
	// modelled arrival rate; origin sync traffic is counted raw (it
	// does not scale with browsers — that is the point).
	var originReqs, replicaReqs float64
	var servedW, totalW float64
	var syncBytes, resolveWireBytes uint64
	var gateProofs int
	var staleness []float64
	var resolveRTTs []time.Duration
	lastCP := topology.Checkpoint{}
	dirty := false

	// Record plane + warm start (not timed: cold sync is PR-7's story,
	// the window measures steady state).
	regionalFCs := make([]*topology.FilterCache, nRegionals)
	replicas := make([]*topology.Replica, nRegionals)
	regionalLinks := make([]*wanLink, nRegionals)
	cp, err := origin.Checkpoint()
	if err != nil {
		return arm, err
	}
	lastCP = cp
	for j := 0; j < nRegionals; j++ {
		regionalFCs[j] = topology.NewFilterCache(topology.TierRegional, 0, reg)
		if _, _, err := regionalFCs[j].Pull(origin.L); err != nil {
			return arm, err
		}
		regionalLinks[j], err = newWANLink(sched, 50*time.Millisecond, 0.002, armSeed+int64(j))
		if err != nil {
			return arm, err
		}
		if flat {
			continue // the flat proxy resolves at the origin, no replica
		}
		replicas[j], err = topology.NewReplica(1, origin.ReplicationKey(), reg)
		if err != nil {
			return arm, err
		}
		defer replicas[j].L.Close()
		if err := replicas[j].CatchUp(origin, cp); err != nil {
			return arm, err
		}
	}

	// The StateHash gate: no replica read is admitted (or timed) until
	// every replica's own state hash equals the origin checkpoint's.
	if !flat {
		gate := &topologyGate{Replicas: nRegionals, AllReady: true, StateHashMatch: true}
		originState, err := origin.L.StateHash()
		if err != nil {
			return arm, err
		}
		for j := 0; j < nRegionals; j++ {
			if !replicas[j].Ready() {
				gate.AllReady = false
			}
			rs, err := replicas[j].L.StateHash()
			if err != nil {
				return arm, err
			}
			if rs != originState {
				gate.StateHashMatch = false
			}
		}
		arm.ReplicaGate = gate
		if !gate.AllReady || !gate.StateHashMatch {
			return arm, fmt.Errorf("replica gate failed before timing: %+v", gate)
		}
	}

	edges := make([]*edgeSim, nEdges)
	edgeLinks := make([]*wanLink, nEdges)
	for k := 0; k < nEdges; k++ {
		median, loss := 20*time.Millisecond, 0.01
		if flat {
			// The flat proxy talks straight to the origin over the wide
			// hop; losses match the tiered resolution path so the two
			// arms compare at equal availability.
			median = 50 * time.Millisecond
		}
		edgeLinks[k], err = newWANLink(sched, median, loss, armSeed+0x10000+int64(k))
		if err != nil {
			return arm, err
		}
		erng := rand.New(rand.NewSource(armSeed + 0x20000 + int64(k)))
		edges[k] = &edgeSim{
			fc:       topology.NewFilterCache(topology.TierEdge, 0, reg),
			rng:      erng,
			zipf:     rand.NewZipf(erng, cfg.Zipf, 1, uint64(cfg.IDs-1)),
			link:     edgeLinks[k],
			seenRevs: make(map[int]bool),
		}
		var src topology.Syncer = regionalFCs[k/nEdgesPer]
		if flat {
			src = origin.L
		}
		if _, _, err := edges[k].fc.Pull(src); err != nil {
			return arm, err
		}
	}

	// Revocation events at the origin.
	for i := range revs {
		ev := revs[i]
		sched.At(ev.at, func() {
			rec := recs[ev.idx]
			rec.State = ledger.StateRevoked
			rec.OpSeq++
			if err := origin.Restore([]ledger.Record{rec}); err != nil {
				panic(fmt.Sprintf("topology: mid-run revoke: %v", err))
			}
			dirty = true
		})
	}

	// Origin epoch builder + checkpoint cutter.
	var buildLoop func()
	buildLoop = func() {
		if dirty {
			if _, err := l.BuildSnapshot(); err != nil {
				panic(fmt.Sprintf("topology: snapshot build: %v", err))
			}
			dirty = false
		}
		cp, err := origin.Checkpoint()
		if err != nil {
			panic(fmt.Sprintf("topology: checkpoint: %v", err))
		}
		lastCP = cp
		sched.After(interval, buildLoop)
	}
	sched.After(interval, buildLoop)

	// Regional sync loops (tiered only): filter pull + replica catch-up
	// over the origin WAN hop, each round two origin requests.
	if !flat {
		for j := 0; j < nRegionals; j++ {
			j := j
			var syncLoop func()
			syncLoop = func() {
				regionalLinks[j].request(func(err error, _ time.Duration) {
					if err == nil {
						originReqs += 2
						if _, n, perr := regionalFCs[j].Pull(origin.L); perr == nil {
							syncBytes += uint64(n)
						}
						if cerr := replicas[j].CatchUp(origin, lastCP); cerr != nil {
							panic(fmt.Sprintf("topology: catch-up: %v", cerr))
						}
					}
					sched.After(interval, syncLoop)
				})
			}
			// Stagger regionals across the interval.
			sched.After(interval*time.Duration(j+1)/time.Duration(nRegionals+1), syncLoop)
		}
	}

	// Edge sync loops: pull from the regional tier (or the origin when
	// flat) over the edge WAN hop, then harvest staleness samples.
	for k := 0; k < nEdges; k++ {
		k := k
		var src topology.Syncer = regionalFCs[k/nEdgesPer]
		if flat {
			src = origin.L
		}
		var syncLoop func()
		syncLoop = func() {
			edges[k].link.request(func(err error, _ time.Duration) {
				if err == nil {
					if flat {
						originReqs++
					}
					if _, n, perr := edges[k].fc.Pull(src); perr == nil {
						syncBytes += uint64(n)
					}
					edges[k].installCheck(sched.Now(), revs, &staleness)
				}
				sched.After(interval, syncLoop)
			})
		}
		sched.After(interval*time.Duration(k+1)/time.Duration(nEdges+1), syncLoop)
	}

	// Edge serving loops: every tick, validate a bounded sample of the
	// edge's page arrivals and weight the outcomes back up.
	for k := 0; k < nEdges; k++ {
		e := edges[k]
		replica := replicas[k/nEdgesPer] // nil when flat
		sample := cfg.SamplePages
		weight := pagesPerEdgeTick / float64(sample)
		var tickLoop func()
		tickLoop = func() {
			if sched.Now() >= window {
				return
			}
			for p := 0; p < sample; p++ {
				totalW += weight
				_, f, ok := e.fc.Latest()
				if !ok {
					continue // no filter yet: page unservable, counted against availability
				}
				var positive []ids.PhotoID
				for i := 0; i < cfg.PageSize; i++ {
					idx := int(e.zipf.Uint64())
					if f.Test(ledger.FilterKey(recs[idx].ID)) {
						positive = append(positive, recs[idx].ID)
					}
				}
				if len(positive) == 0 {
					servedW += weight
					continue
				}
				batch := positive
				w := weight
				e.link.request(func(err error, rtt time.Duration) {
					if err != nil {
						return // resolution lost: page degraded
					}
					resolveRTTs = append(resolveRTTs, rtt)
					if flat {
						originReqs += w
						if qerr := wireResolve(codec, origin.L.StatusBatch, batch, &resolveWireBytes, &gateProofs); qerr == nil {
							servedW += w
						}
						return
					}
					if !replica.Ready() {
						return // gate: un-verified replicas serve nothing
					}
					replicaReqs += w
					if qerr := wireResolve(codec, replica.L.StatusBatch, batch, &resolveWireBytes, &gateProofs); qerr == nil {
						servedW += w
					}
				})
			}
			sched.After(tick, tickLoop)
		}
		sched.After(tick*time.Duration(k+1)/time.Duration(nEdges+1), tickLoop)
	}

	sched.RunUntil(window)

	arm.OriginRequests = originReqs
	arm.OriginQPS = originReqs / window.Seconds()
	arm.ReplicaQPS = replicaReqs / window.Seconds()
	if totalW > 0 {
		arm.Availability = servedW / totalW
	}
	arm.SyncBytes = syncBytes
	arm.ResolveWireBytes = resolveWireBytes
	arm.WireGateProofs = gateProofs
	arm.PagesModelled = totalW
	arm.PagesSampled = nEdges * cfg.SamplePages * cfg.WindowSec
	if len(staleness) > 0 {
		sort.Float64s(staleness)
		var sum float64
		for _, s := range staleness {
			sum += s
		}
		arm.StalenessMeanSec = sum / float64(len(staleness))
		arm.StalenessP95Sec = staleness[int(0.95*float64(len(staleness)-1))]
	}
	arm.StalenessSamples = len(staleness)
	if len(resolveRTTs) > 0 {
		arm.ResolveP95Ms = float64(netsim.Quantile(resolveRTTs, 0.95)) / float64(time.Millisecond)
	}
	arm.Metrics = reg.Snapshot()
	return arm, nil
}

// runTopology drives the sweep and writes the report.
func runTopology(cfg topologyConfig) error {
	if cfg.Regionals < 1 || cfg.Edges < 1 || cfg.SamplePages < 1 || cfg.PageSize < 1 {
		return fmt.Errorf("topology: regionals, edges, sample and page size must be >= 1")
	}
	if cfg.Zipf <= 1 {
		return fmt.Errorf("topology: -topology-zipf must be > 1")
	}
	report := topologyReport{
		Seed:         cfg.Seed,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Browsers:     cfg.Browsers,
		IDs:          cfg.IDs,
		Revoked:      cfg.Revoked,
		Regionals:    cfg.Regionals,
		EdgesPer:     cfg.Edges,
		PageSize:     cfg.PageSize,
		PagesPerHour: cfg.PagesPerHour,
		Zipf:         cfg.Zipf,
		WindowSec:    cfg.WindowSec,
		Revokes:      cfg.Revokes,
	}

	codecs := cfg.Wire
	if len(codecs) == 0 {
		codecs = []wire.Codec{wire.CodecJSON}
	}

	// runSet runs one shape under every requested codec and gates the
	// codec twins against each other: same seed, same traffic, so any
	// decision-level divergence means a codec changed behavior. Returns
	// the index of the first codec's arm in report.Arms.
	runSet := func(intervalSec int, flat bool) (int, error) {
		first := -1
		for _, codec := range codecs {
			arm, err := runTopologyArm(cfg, intervalSec, flat, codec)
			if err != nil {
				return -1, err
			}
			fmt.Printf("topology: %-24s origin %8.2f qps  replica %8.2f qps  avail %.4f  staleness p95 %6.1fs  resolve %8d B\n",
				arm.Arm, arm.OriginQPS, arm.ReplicaQPS, arm.Availability, arm.StalenessP95Sec, arm.ResolveWireBytes)
			report.Arms = append(report.Arms, arm)
			if first < 0 {
				first = len(report.Arms) - 1
				continue
			}
			ref := report.Arms[first]
			if arm.Availability != ref.Availability || arm.OriginRequests != ref.OriginRequests ||
				arm.ReplicaQPS != ref.ReplicaQPS || arm.StalenessSamples != ref.StalenessSamples {
				return -1, fmt.Errorf("topology: codec twins diverge: %s vs %s", arm.Arm, ref.Arm)
			}
		}
		return first, nil
	}

	flatIdx, err := runSet(baselineIntervalSec, true)
	if err != nil {
		return err
	}

	baselineTiered := -1
	for _, iv := range cfg.Intervals {
		idx, err := runSet(iv, false)
		if err != nil {
			return err
		}
		if baselineTiered < 0 || iv == baselineIntervalSec {
			baselineTiered = idx
		}
	}
	flatArm := report.Arms[flatIdx]
	if baselineTiered >= 0 && report.Arms[baselineTiered].OriginQPS > 0 {
		report.OriginLoadReduction = flatArm.OriginQPS / report.Arms[baselineTiered].OriginQPS
		report.AvailabilityDelta = flatArm.Availability - report.Arms[baselineTiered].Availability
	}
	if baselineTiered >= 0 {
		var jsonBytes, binBytes uint64
		for _, a := range report.Arms {
			if a.IntervalSec != report.Arms[baselineTiered].IntervalSec || a.ReplicaQPS == 0 {
				continue
			}
			switch a.Wire {
			case "json":
				jsonBytes = a.ResolveWireBytes
			case "binary":
				binBytes = a.ResolveWireBytes
			}
		}
		if jsonBytes > 0 && binBytes > 0 {
			report.WireResolveBytesRatio = float64(jsonBytes) / float64(binBytes)
			fmt.Printf("topology: resolution plane: IRSW1 moves %.2fx fewer bytes than JSON at the baseline interval\n",
				report.WireResolveBytesRatio)
		}
	}
	report.Note = "virtual-time netsim run; browsers modelled in aggregate (sampled pages weighted to the " +
		"full arrival rate); origin_qps counts every request reaching the origin ledger; tiered arms gate " +
		"replica reads on StateHash equivalence with a signed origin checkpoint before timing; wire codec " +
		"twins replay identical traffic and are gated on identical decisions with byte-identical proofs"

	f, err := os.Create(cfg.Out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("topology: origin load reduction %.1fx (availability delta %+.4f) -> %s\n",
		report.OriginLoadReduction, report.AvailabilityDelta, cfg.Out)
	return nil
}
