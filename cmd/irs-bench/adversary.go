package main

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"irs/internal/aggregator"
	"irs/internal/camera"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/obs"
	"irs/internal/phash"
	"irs/internal/photo"
	"irs/internal/proxy"
	"irs/internal/watermark"
	"irs/internal/wire"
)

// The -adversary harness is the degradation envelope: four seeded
// attack generators, each paired with a benign control twin of the
// same shape, so the report shows what an attacker costs the system
// *relative to the identical volume of honest traffic*:
//
//	index-flood    uploads crafted to collide in the SigIndex band
//	               buckets (unkeyed baseline vs keyed mixer)
//	herd-takedown  a thundering herd revalidating one taken-down
//	               celebrity id through singleflight, with a transient
//	               upstream failure at the herd moment
//	stampede       a cache-busting flood timed against a sync-epoch
//	               expiry, against a budget-bounded upstream, with
//	               per-client admission off vs on
//	race-appeal    concurrent appeal takedowns, revalidations and
//	               uploads over a shared population (the torn-state
//	               race), judged on post-quiescence invariants
//
// Every arm runs twice with the same seed; the decision hashes — the
// seeded request streams plus the outcome surfaces that the
// concurrency contracts pin independent of scheduling — must match
// (trace_stable). Outcome splits that legitimately depend on goroutine
// interleaving (which benign page lost the race to a flooded upstream,
// how many waiters re-led a collapsed flight) are reported as metrics
// but kept out of the hashes; each arm's note says which is which.
//
// Contract gates (identical decisions, ≤1 herd failure, race
// invariants) are always enforced. The wall-clock and availability
// envelope gates (unkeyed p99 degrades ≥10×, keyed stays ≤2×, benign
// availability ≥99% under admission) are enforced only with
// -adversary-enforce — the sized-down smoke in scripts/check.sh keeps
// the decision gates without asserting timing on loaded CI machines.

// adversaryConfig carries the -adversary flags.
type adversaryConfig struct {
	Out     string
	Seed    int64
	Enforce bool

	// index-flood arm.
	IndexBenign int
	IndexFlood  int
	IndexProbes int
	IndexReps   int

	// herd-takedown arm.
	HerdIDs        int
	HerdSize       int
	HerdWaves      int
	HerdCollateral int

	// stampede arm.
	StampedeIDs     int
	StampedeWorkers int
	StampedePages   int
	StampedeBatch   int
	StampedeFlood   int

	// race-appeal arm.
	RaceVictims int
	RaceFresh   int
}

// adversaryScale returns the preset workload sizes.
func adversaryScale(scale string, seed int64, out string, enforce bool) (adversaryConfig, error) {
	cfg := adversaryConfig{Out: out, Seed: seed, Enforce: enforce}
	switch scale {
	case "full":
		cfg.IndexBenign, cfg.IndexFlood, cfg.IndexProbes, cfg.IndexReps = 20000, 30000, 300, 7
		cfg.HerdIDs, cfg.HerdSize, cfg.HerdWaves, cfg.HerdCollateral = 2048, 64, 12, 4
		cfg.StampedeIDs, cfg.StampedeWorkers, cfg.StampedePages, cfg.StampedeBatch, cfg.StampedeFlood = 2048, 6, 24, 32, 12000
		cfg.RaceVictims, cfg.RaceFresh = 12, 24
	case "quick":
		cfg.IndexBenign, cfg.IndexFlood, cfg.IndexProbes, cfg.IndexReps = 3000, 1200, 80, 2
		cfg.HerdIDs, cfg.HerdSize, cfg.HerdWaves, cfg.HerdCollateral = 512, 24, 4, 2
		cfg.StampedeIDs, cfg.StampedeWorkers, cfg.StampedePages, cfg.StampedeBatch, cfg.StampedeFlood = 512, 4, 8, 24, 3000
		cfg.RaceVictims, cfg.RaceFresh = 6, 10
	default:
		return cfg, fmt.Errorf("bad -adversary-scale %q (quick|full)", scale)
	}
	return cfg, nil
}

// advArm is one measured sub-arm of the report.
type advArm struct {
	Arm     string `json:"arm"`
	Control bool   `json:"control"` // benign twin

	Requests int `json:"requests"`
	Failures int `json:"failures"`

	Availability float64 `json:"availability"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	P99Ms        float64 `json:"p99_ms"`

	DecisionHash string `json:"decision_hash"`
	TraceStable  bool   `json:"trace_stable"`

	Extra map[string]float64 `json:"extra,omitempty"`
	Note  string             `json:"note,omitempty"`
}

// advReport is the BENCH_adversary.json document.
type advReport struct {
	Seed       int64           `json:"seed"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Arms       []advArm        `json:"arms"`
	Gates      map[string]bool `json:"gates"`
	Enforced   bool            `json:"gates_enforced"`
	Note       string          `json:"note"`
}

// advOutcome is one run of one sub-arm.
type advOutcome struct {
	lat      []time.Duration
	requests int
	failures int
	decision hash.Hash
	extra    map[string]float64
}

func newAdvOutcome() *advOutcome {
	return &advOutcome{decision: sha256.New(), extra: map[string]float64{}}
}

func (o *advOutcome) hashU64(vs ...uint64) {
	var b [8]byte
	for _, v := range vs {
		binary.BigEndian.PutUint64(b[:], v)
		o.decision.Write(b[:])
	}
}

func (o *advOutcome) hashSum() string {
	return hex.EncodeToString(o.decision.Sum(nil))
}

// advPct is the nearest-index percentile in milliseconds.
func advPct(ds []time.Duration, p float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
	return float64(ds[int(p*float64(len(ds)-1))].Microseconds()) / 1000
}

// advArmOf reduces two same-seed runs to one report row.
func advArmOf(name string, control bool, note string, first, second *advOutcome) advArm {
	a := advArm{
		Arm:          name,
		Control:      control,
		Requests:     first.requests,
		Failures:     first.failures,
		P50Ms:        advPct(first.lat, 0.50),
		P95Ms:        advPct(first.lat, 0.95),
		P99Ms:        advPct(first.lat, 0.99),
		DecisionHash: first.hashSum(),
		TraceStable:  first.hashSum() == second.hashSum(),
		Extra:        first.extra,
		Note:         note,
	}
	if first.requests > 0 {
		a.Availability = float64(first.requests-first.failures) / float64(first.requests)
	}
	return a
}

// ---------------------------------------------------------------------
// Arm 1: index-flood — crafted band-bucket collisions vs the SigIndex.

// advIndexSetup is one fully built index variant awaiting measurement.
// All variants are built up front and timed in interleaved rounds so
// that machine-throughput drift (frequency scaling, thermal) lands on
// every arm equally instead of skewing whichever arm ran last.
type advIndexSetup struct {
	keyed, attack bool
	idx           *aggregator.SigIndex
	probes        []phash.Signature
	reg           *obs.Registry
	out           *advOutcome
	candBefore    float64
}

// advIndexBuild builds one index (keyed or unkeyed) over the benign
// population plus either the crafted-collision corpus (attack) or the
// same count of honest random signatures (control), and gates every
// probe against the linear oracle.
func advIndexBuild(cfg adversaryConfig, keyed, attack bool) (*advIndexSetup, error) {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0xad10))
	benign := make([]phash.Signature, cfg.IndexBenign)
	for i := range benign {
		benign[i] = advRandSig(rng)
	}
	// Band width tracks log₂ of the database (the multi-index sizing
	// rule in phash/bands.go): at this population, 4 bands of 16 bits.
	// Width matters adversarially too — wider bands are exponentially
	// sparser, so the attacker's shared bits buy exponentially less
	// bucket density once the mixer has scattered them.
	const indexBands = 4
	var flood, probes []phash.Signature
	if attack {
		flood, probes = phash.CraftedCollisions(cfg.Seed^0xf100d, indexBands, cfg.IndexFlood, cfg.IndexProbes)
	} else {
		flood = make([]phash.Signature, cfg.IndexFlood)
		for i := range flood {
			flood[i] = advRandSig(rng)
		}
		probes = make([]phash.Signature, cfg.IndexProbes)
		for i := range probes {
			probes[i] = advRandSig(rng)
		}
	}

	reg := obs.NewRegistry()
	icfg := aggregator.IndexConfig{Bands: indexBands, MaxTail: 256, Obs: reg}
	if keyed {
		icfg.BandKey = uint64(cfg.Seed)*0x9e3779b97f4a7c15 | 1
	} else {
		icfg.Unkeyed = true
	}
	idx := aggregator.NewSigIndex(icfg)
	all := append(append([]phash.Signature{}, benign...), flood...)
	pids := make([]ids.PhotoID, len(all))
	for i := range pids {
		pids[i] = advTestID(i)
	}
	idx.AddAll(all, pids)
	// Flush any unindexed tail so every probe runs against the band
	// tables (the structure the flood targets), not the linear tail.
	for i := 0; idx.Stats().Tail > 0 && i < 2*icfg.MaxTail; i++ {
		idx.Add(advRandSig(rng), advTestID(len(all)+i))
	}

	// Identical-decisions gate: the keyed index (any key, and the
	// unkeyed baseline alike) must answer every probe byte-identically
	// to the linear reference scan. Always enforced.
	for pi, p := range probes {
		gotID, gotOK := idx.Lookup(p)
		wantID, wantOK := idx.LookupLinear(p)
		if gotOK != wantOK || gotID != wantID {
			return nil, fmt.Errorf("index-flood keyed=%v attack=%v probe %d: indexed (%v,%v) != linear (%v,%v)",
				keyed, attack, pi, gotID, gotOK, wantID, wantOK)
		}
	}

	// One untimed warmup pass settles the snapshot's cache lines before
	// the measured reps.
	for _, p := range probes {
		idx.Lookup(p)
	}
	out := newAdvOutcome()
	out.lat = make([]time.Duration, len(probes))
	candBefore, _ := obs.Value(reg.Snapshot(), "irs_index_candidates_total")
	return &advIndexSetup{keyed: keyed, attack: attack, idx: idx, probes: probes,
		reg: reg, out: out, candBefore: candBefore}, nil
}

// advIndexMeasureRep times one rep of the setup's probe set. Each rep
// probes the identical set, so the candidate work per probe is
// byte-identical across reps; only scheduler/GC/SMI noise differs. The
// per-probe minimum over reps is therefore an estimator of the
// structural cost alone — independent positive noise is filtered out,
// per-probe structural variation (bucket sizes, candidate loads) is
// kept, and the p99 of the minima measures the attack's real tail.
func (s *advIndexSetup) measureRep(rep int) {
	// Untimed rewarm: the interleaved variants evict each other's band
	// tables between turns; one cold pass restores per-arm warm-cache
	// conditions so the timed pass measures lookup structure, not the
	// harness's own cache thrash.
	for _, p := range s.probes {
		s.idx.Lookup(p)
	}
	out := s.out
	for j, p := range s.probes {
		t0 := time.Now()
		id, ok := s.idx.Lookup(p)
		d := time.Since(t0)
		if rep == 0 || d < out.lat[j] {
			out.lat[j] = d
		}
		out.requests++
		out.hashU64(uint64(p.A), uint64(p.D), uint64(p.P))
		if ok {
			out.hashU64(1, binary.BigEndian.Uint64(id.Rec[:8]))
		} else {
			out.hashU64(0)
		}
	}
}

// finish folds the candidate totals into the outcome once all reps ran.
// Every timed probe was preceded by one untimed rewarm probe, so the
// counter delta covers exactly twice the timed request count.
func (s *advIndexSetup) finish() *advOutcome {
	candAfter, _ := obs.Value(s.reg.Snapshot(), "irs_index_candidates_total")
	perProbe := (candAfter - s.candBefore) / float64(2*s.out.requests)
	s.out.extra["candidates_per_probe"] = perProbe
	s.out.hashU64(uint64(candAfter - s.candBefore))
	return s.out
}

func advRandSig(rng *rand.Rand) phash.Signature {
	return phash.Signature{A: phash.Hash(rng.Uint64()), D: phash.Hash(rng.Uint64()), P: phash.Hash(rng.Uint64())}
}

func advTestID(n int) ids.PhotoID {
	var id ids.PhotoID
	id.Ledger = ids.LedgerID(n%7 + 1)
	binary.BigEndian.PutUint64(id.Rec[:8], uint64(n))
	return id
}

// runAdvIndexFlood produces the four index sub-arms and their gates.
// Every variant (keyed × attack, and its same-seed replay twin) is
// built before any timing starts, and the reps are interleaved
// round-robin across variants, so the latency ratios compare arms
// measured under the same instantaneous machine conditions.
func runAdvIndexFlood(cfg adversaryConfig, report *advReport) error {
	note := "hash: probe stream + lookup results + candidate totals (fully deterministic, single-threaded)"
	setups := make([]*advIndexSetup, 0, 8)
	for _, keyed := range []bool{false, true} {
		for _, attack := range []bool{true, false} {
			for run := 0; run < 2; run++ {
				s, err := advIndexBuild(cfg, keyed, attack)
				if err != nil {
					return err
				}
				setups = append(setups, s)
			}
		}
	}
	for rep := 0; rep < cfg.IndexReps; rep++ {
		for _, s := range setups {
			s.measureRep(rep)
		}
	}
	arms := make(map[string]advArm, 4)
	for i := 0; i < len(setups); i += 2 {
		first, second := setups[i], setups[i+1]
		name := "index-flood/unkeyed"
		if first.keyed {
			name = "index-flood/keyed"
		}
		arm := advArmOf(name, !first.attack, note, first.finish(), second.finish())
		arms[fmt.Sprintf("%s/attack=%v", name, first.attack)] = arm
		report.Arms = append(report.Arms, arm)
	}
	unkeyedRatio := arms["index-flood/unkeyed/attack=true"].P99Ms / arms["index-flood/unkeyed/attack=false"].P99Ms
	keyedRatio := arms["index-flood/keyed/attack=true"].P99Ms / arms["index-flood/keyed/attack=false"].P99Ms
	candRatio := arms["index-flood/keyed/attack=true"].Extra["candidates_per_probe"] /
		arms["index-flood/unkeyed/attack=true"].Extra["candidates_per_probe"]
	report.Gates["index_unkeyed_p99_degrades_10x"] = unkeyedRatio >= 10
	report.Gates["index_keyed_p99_within_2x_of_benign"] = keyedRatio <= 2
	report.Gates["index_keyed_candidates_10x_below_unkeyed"] = candRatio <= 0.1
	fmt.Printf("%-34s unkeyed p99 ratio %6.1fx  keyed p99 ratio %5.2fx  keyed/unkeyed candidates %6.4f\n",
		"adversary: index-flood", unkeyedRatio, keyedRatio, candRatio)
	return nil
}

// ---------------------------------------------------------------------
// Arm 2: herd-takedown — thundering herd through singleflight with a
// transient leader failure.

// advFaultService counts upstream queries and can fail exactly one
// call when armed.
type advFaultService struct {
	wire.Service
	queries atomic.Uint64
	fail    atomic.Bool
}

var errAdvTransient = fmt.Errorf("adversary: transient upstream failure")

func (s *advFaultService) Status(id ids.PhotoID) (*ledger.StatusProof, error) {
	s.queries.Add(1)
	if s.fail.CompareAndSwap(true, false) {
		return nil, &wire.TransportError{PreSend: true, Err: errAdvTransient}
	}
	return s.Service.Status(id)
}

func (s *advFaultService) StatusBatch(batch []ids.PhotoID) ([]*ledger.StatusProof, error) {
	s.queries.Add(uint64(len(batch)))
	return s.Service.StatusBatch(batch)
}

// advHerdOnce runs the herd: every wave invalidates the celebrity's
// cached proof (its takedown just propagated) and HerdSize goroutines
// revalidate it simultaneously; the attack arm injects one transient
// upstream failure per wave at exactly the herd moment. The waiter
// re-entry contract pins the blast radius: exactly the leader's caller
// fails, every waiter re-enters once and succeeds.
func advHerdOnce(cfg adversaryConfig, backend *serveLedger, celebrity ids.PhotoID, attack bool) (*advOutcome, error) {
	svc := &advFaultService{Service: backend.direct}
	now := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	v := proxy.NewValidator(proxy.Config{
		CacheCapacity: cfg.HerdIDs * 2,
		CacheTTL:      time.Minute,
		Stripes:       16,
		Clock:         func() time.Time { return now },
	}, svc.Status)
	v.SetBatchQuery(func(_ ids.LedgerID, page []ids.PhotoID) ([]*ledger.StatusProof, error) {
		return svc.StatusBatch(page)
	})
	// Warm the whole population so collateral traffic is cache hits.
	for lo := 0; lo < len(backend.ids); lo += 64 {
		hi := lo + 64
		if hi > len(backend.ids) {
			hi = len(backend.ids)
		}
		if _, err := v.ValidateBatch(backend.ids[lo:hi]); err != nil {
			return nil, fmt.Errorf("herd warm: %w", err)
		}
	}
	v.ResetStats()
	warmQueries := svc.queries.Load()

	out := newAdvOutcome()
	var collateralFail atomic.Uint64
	var collateralTotal atomic.Uint64
	collatLat := make([][]time.Duration, cfg.HerdSize)
	for wave := 0; wave < cfg.HerdWaves; wave++ {
		v.Invalidate(celebrity)
		if attack {
			svc.fail.Store(true)
		}
		var wg sync.WaitGroup
		waveFails := make([]int, cfg.HerdSize)
		waveLat := make([]time.Duration, cfg.HerdSize)
		for g := 0; g < cfg.HerdSize; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				t0 := time.Now()
				_, err := v.Validate(celebrity)
				waveLat[g] = time.Since(t0)
				if err != nil {
					waveFails[g] = 1
				}
				// Collateral: warm ids validated from the same goroutine,
				// deterministic per (wave, goroutine).
				for c := 0; c < cfg.HerdCollateral; c++ {
					id := backend.ids[(wave*cfg.HerdSize*cfg.HerdCollateral+g*cfg.HerdCollateral+c+1)%len(backend.ids)]
					if id == celebrity {
						id = backend.ids[1]
					}
					ct0 := time.Now()
					_, cerr := v.Validate(id)
					collatLat[g] = append(collatLat[g], time.Since(ct0))
					collateralTotal.Add(1)
					if cerr != nil {
						collateralFail.Add(1)
					}
				}
			}(g)
		}
		wg.Wait()
		fails := 0
		for _, f := range waveFails {
			fails += f
		}
		out.lat = append(out.lat, waveLat...)
		out.requests += cfg.HerdSize
		out.failures += fails
		// Contract gate (always enforced): with the re-entry fix, a herd
		// of N suffers exactly one failure per injected transient fault —
		// the failed leader's own caller — and zero without one.
		want := 0
		if attack {
			want = 1
		}
		if fails != want {
			return nil, fmt.Errorf("herd attack=%v wave %d: %d callers failed, want exactly %d (singleflight re-entry contract)",
				attack, wave, fails, want)
		}
		out.hashU64(uint64(wave), uint64(fails))
	}
	herdQueries := svc.queries.Load() - warmQueries
	out.extra["upstream_queries"] = float64(herdQueries)
	out.extra["queries_per_wave"] = float64(herdQueries) / float64(cfg.HerdWaves)
	out.extra["collateral_requests"] = float64(collateralTotal.Load())
	out.extra["collateral_failures"] = float64(collateralFail.Load())
	var allCollat []time.Duration
	for _, ls := range collatLat {
		allCollat = append(allCollat, ls...)
	}
	out.extra["collateral_p99_ms"] = advPct(allCollat, 0.99)
	// Scheduling decides how many re-entering waiters found the second
	// flight vs led their own, so the query count per wave is bounded
	// (≤ herd+1), not pinned; it stays out of the hash.
	if maxQ := uint64(cfg.HerdWaves * (cfg.HerdSize + 1)); herdQueries > maxQ {
		return nil, fmt.Errorf("herd attack=%v: %d upstream queries for %d waves, want <= %d (singleflight collapse broken)",
			attack, herdQueries, cfg.HerdWaves, maxQ)
	}
	out.hashU64(uint64(collateralFail.Load()))
	return out, nil
}

func runAdvHerd(cfg adversaryConfig, report *advReport) error {
	backend, err := setupServeLedger(serveConfig{
		Workers: 1, IDs: cfg.HerdIDs, Batch: 64, Pages: 1,
		Revoked: 0.1, Zipf: 1.1, Seed: cfg.Seed ^ 0x4e2d,
	}, 0)
	if err != nil {
		return err
	}
	defer backend.close()
	celebrity := backend.ids[0]
	// The takedown: the celebrity's claim is revoked at the ledger, so
	// every herd revalidation now races to propagate the new state.
	if err := backend.l.PermanentRevoke(celebrity); err != nil {
		return err
	}

	note := "hash: per-wave failure counts + collateral failures (pinned by the singleflight re-entry " +
		"contract); upstream query counts are schedule-bounded, reported unhashed"
	for _, attack := range []bool{true, false} {
		first, err := advHerdOnce(cfg, backend, celebrity, attack)
		if err != nil {
			return err
		}
		second, err := advHerdOnce(cfg, backend, celebrity, attack)
		if err != nil {
			return fmt.Errorf("replay: %w", err)
		}
		arm := advArmOf("herd-takedown", !attack, note, first, second)
		report.Arms = append(report.Arms, arm)
		if attack {
			report.Gates["herd_at_most_one_failure_per_wave"] = arm.Failures == cfg.HerdWaves
			report.Gates["herd_collateral_unharmed"] = arm.Extra["collateral_failures"] == 0
		}
		fmt.Printf("%-34s attack=%-5v avail %6.2f%%  p99 %7.3fms  queries/wave %.1f  collateral p99 %.3fms  stable=%v\n",
			"adversary: herd-takedown", attack, 100*arm.Availability, arm.P99Ms,
			arm.Extra["queries_per_wave"], arm.Extra["collateral_p99_ms"], arm.TraceStable)
	}
	return nil
}

// ---------------------------------------------------------------------
// Arm 3: stampede — cache-busting flood timed against a sync-epoch
// expiry, against a budget-bounded upstream, admission off vs on.

// advBudgetService models a capacity-bounded upstream: each epoch has
// a fixed query budget; demand beyond it fails with an overload error.
type advBudgetService struct {
	wire.Service
	budget  atomic.Int64
	queries atomic.Uint64
	denied  atomic.Uint64
}

var errAdvOverload = fmt.Errorf("adversary: upstream over capacity")

func (s *advBudgetService) take(n int64) error {
	s.queries.Add(uint64(n))
	if s.budget.Add(-n) < 0 {
		s.denied.Add(uint64(n))
		return &wire.TransportError{Err: errAdvOverload}
	}
	return nil
}

func (s *advBudgetService) Status(id ids.PhotoID) (*ledger.StatusProof, error) {
	if err := s.take(1); err != nil {
		return nil, err
	}
	return s.Service.Status(id)
}

func (s *advBudgetService) StatusBatch(batch []ids.PhotoID) ([]*ledger.StatusProof, error) {
	if err := s.take(int64(len(batch))); err != nil {
		return nil, err
	}
	return s.Service.StatusBatch(batch)
}

// advStampedeOnce: preload the population, then expire every cached
// proof at the epoch barrier and run the storm — benign pages racing a
// cache-busting flooder for a bounded upstream. With admission off the
// flooder's misses drain the epoch budget and benign pages fail; with
// admission on the flooder is denied at the door after its burst
// allowance and the budget survives for benign traffic.
func advStampedeOnce(cfg adversaryConfig, backend *serveLedger, truth map[ids.PhotoID]ledger.State, attack, admission bool) (*advOutcome, error) {
	svc := &advBudgetService{Service: backend.direct}
	now := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	benignBudget := int64(cfg.StampedeWorkers * cfg.StampedePages * cfg.StampedeBatch)
	adm := proxy.AdmissionConfig{}
	if admission {
		adm = proxy.AdmissionConfig{
			Enabled: true,
			// Benign workers must ride entirely on their private burst (the
			// storm runs on a frozen clock, so there is no refill): budget
			// one worker's whole storm demand. The flooder gets the same
			// allowance and the small shared pool — a bounded bleed-through
			// — then is denied.
			Rate:          float64(cfg.StampedePages * cfg.StampedeBatch),
			Burst:         float64(cfg.StampedePages * cfg.StampedeBatch),
			OverflowRate:  1,
			OverflowBurst: float64(cfg.StampedeBatch),
		}
	}
	v := proxy.NewValidator(proxy.Config{
		CacheCapacity: cfg.StampedeIDs * 2,
		CacheTTL:      time.Minute,
		Stripes:       16,
		Clock:         func() time.Time { return now },
		Admission:     adm,
	}, svc.Status)
	v.SetBatchQuery(func(_ ids.LedgerID, page []ids.PhotoID) ([]*ledger.StatusProof, error) {
		return svc.StatusBatch(page)
	})

	// Preload with an ample budget (a real proxy has been serving all
	// day when the epoch rolls).
	svc.budget.Store(int64(cfg.StampedeIDs) * 4)
	for lo := 0; lo < len(backend.ids); lo += cfg.StampedeBatch {
		hi := lo + cfg.StampedeBatch
		if hi > len(backend.ids) {
			hi = len(backend.ids)
		}
		if _, err := v.ValidateBatch(backend.ids[lo:hi]); err != nil {
			return nil, fmt.Errorf("stampede preload: %w", err)
		}
	}
	v.ResetStats()

	// Epoch barrier: every cached proof expires at once (the filter
	// refresh moment the attack is timed against), and the upstream
	// budget resets to the benign epoch demand plus slack.
	now = now.Add(2 * time.Minute)
	svc.budget.Store(benignBudget + int64(cfg.StampedeIDs))
	svc.queries.Store(0)
	svc.denied.Store(0)

	out := newAdvOutcome()
	var wg sync.WaitGroup
	var floodAdmitted, floodDenied uint64
	benignServed := make([]int, cfg.StampedeWorkers)
	benignTotal := make([]int, cfg.StampedeWorkers)
	benignLat := make([][]time.Duration, cfg.StampedeWorkers)
	streams := make([]hash.Hash, cfg.StampedeWorkers)

	if attack {
		// The flood lands exactly at the epoch boundary — before any
		// benign page has rewarmed the cache, which is what "timed
		// against sync epochs" buys the attacker. Running it to
		// completion first also makes the whole arm deterministic: with
		// admission off the budget is already drained (every benign page
		// fails), with admission on the flooder is denied at the door
		// after its burst allowance (every benign page succeeds).
		frng := rand.New(rand.NewSource(cfg.Seed ^ 0xf10cd))
		for i := 0; i < cfg.StampedeFlood; i++ {
			// Cache-busting: never-claimed identifiers, every one an
			// upstream miss.
			var id ids.PhotoID
			id.Ledger = 1
			frng.Read(id.Rec[:])
			if !v.Admit("flooder", 1) {
				floodDenied++
				continue
			}
			floodAdmitted++
			_, _ = v.Validate(id)
		}
	}
	for w := 0; w < cfg.StampedeWorkers; w++ {
		wg.Add(1)
		streams[w] = sha256.New()
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed ^ int64(0x57a0+w)))
			zipf := rand.NewZipf(rng, 1.1, 1, uint64(len(backend.ids)-1))
			page := make([]ids.PhotoID, cfg.StampedeBatch)
			client := fmt.Sprintf("benign-%d", w)
			var idx [8]byte
			for p := 0; p < cfg.StampedePages; p++ {
				for i := range page {
					k := zipf.Uint64()
					page[i] = backend.ids[k]
					binary.BigEndian.PutUint64(idx[:], k)
					streams[w].Write(idx[:])
				}
				served := false
				if v.Admit(client, len(page)) {
					t0 := time.Now()
					res, err := v.ValidateBatch(page)
					benignLat[w] = append(benignLat[w], time.Since(t0))
					if err == nil {
						served = true
						for i, r := range res {
							if r.State != truth[page[i]] {
								served = false
								break
							}
						}
					}
				}
				benignTotal[w]++
				if served {
					benignServed[w]++
					streams[w].Write([]byte{1})
				} else {
					streams[w].Write([]byte{0})
				}
			}
		}(w)
	}
	wg.Wait()

	for w := 0; w < cfg.StampedeWorkers; w++ {
		out.requests += benignTotal[w]
		out.failures += benignTotal[w] - benignServed[w]
		out.lat = append(out.lat, benignLat[w]...)
		out.decision.Write(streams[w].Sum(nil))
	}
	out.extra["upstream_queries"] = float64(svc.queries.Load())
	out.extra["upstream_overloaded"] = float64(svc.denied.Load())
	out.extra["flood_admitted"] = float64(floodAdmitted)
	out.extra["flood_denied"] = float64(floodDenied)
	if attack {
		out.extra["flood_requests"] = float64(cfg.StampedeFlood)
	}
	// Everything is pinned: the flood runs serially at the epoch
	// boundary (its admission totals are a pure function of the frozen
	// clock and the bucket parameters) and every benign page's fate is
	// decided by the budget the flood left behind, not by scheduling.
	out.hashU64(floodAdmitted, floodDenied)
	return out, nil
}

func runAdvStampede(cfg adversaryConfig, report *advReport) error {
	backend, err := setupServeLedger(serveConfig{
		Workers: 1, IDs: cfg.StampedeIDs, Batch: cfg.StampedeBatch, Pages: 1,
		Revoked: 0.1, Zipf: 1.1, Seed: cfg.Seed ^ 0x57a3,
	}, 0)
	if err != nil {
		return err
	}
	defer backend.close()
	truth := make(map[ids.PhotoID]ledger.State, len(backend.ids))
	for _, id := range backend.ids {
		p, err := backend.direct.Status(id)
		if err != nil {
			return err
		}
		truth[id] = p.State
	}

	type spec struct {
		name              string
		attack, admission bool
	}
	specs := []spec{
		{"stampede/admission-off", true, false},
		{"stampede/admission-on", true, true},
		{"stampede/benign-twin", false, false},
	}
	note := "hash: benign request streams with per-page served bits + flooder admission totals; the flood " +
		"runs serially at the epoch boundary, so every outcome is pinned by the seed and the frozen clock"
	for _, sp := range specs {
		first, err := advStampedeOnce(cfg, backend, truth, sp.attack, sp.admission)
		if err != nil {
			return fmt.Errorf("%s: %w", sp.name, err)
		}
		second, err := advStampedeOnce(cfg, backend, truth, sp.attack, sp.admission)
		if err != nil {
			return fmt.Errorf("%s (replay): %w", sp.name, err)
		}
		arm := advArmOf(sp.name, !sp.attack, note, first, second)
		report.Arms = append(report.Arms, arm)
		switch sp.name {
		case "stampede/admission-on":
			report.Gates["stampede_admission_benign_availability_99"] = arm.Availability >= 0.99
			if f := arm.Extra["flood_requests"]; f > 0 {
				report.Gates["stampede_admission_denies_flood"] = arm.Extra["flood_denied"] >= 0.9*f
			}
		case "stampede/admission-off":
			report.Gates["stampede_unthrottled_flood_degrades_benign"] = arm.Availability < 0.99
		case "stampede/benign-twin":
			report.Gates["stampede_benign_twin_fully_served"] = arm.Availability == 1
		}
		fmt.Printf("%-34s %-24s avail %6.2f%%  p99 %7.3fms  upstream %d/%d overloaded  flood %d admitted %d denied  stable=%v\n",
			"adversary: stampede", sp.name, 100*arm.Availability, arm.P99Ms,
			int(arm.Extra["upstream_overloaded"]), int(arm.Extra["upstream_queries"]),
			int(arm.Extra["flood_admitted"]), int(arm.Extra["flood_denied"]), arm.TraceStable)
	}
	return nil
}

// ---------------------------------------------------------------------
// Arm 4: race-appeal — concurrent takedown/revalidate/upload torn-state
// race, judged on post-quiescence invariants.

// advRaceOnce uploads a victim population with a pre-claimed
// derivative each, then (attack) races appeal takedowns, revalidating
// serves and fresh uploads against each other, or (control) runs the
// same operations serially. The hash covers only the
// scheduling-independent surfaces: the victim population, the
// post-quiescence hosted set, the derivative re-upload decisions, and
// the conservation check.
func advRaceOnce(cfg adversaryConfig, attack bool) (*advOutcome, error) {
	base := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	var offNs atomic.Int64
	clock := func() time.Time { return base.Add(time.Duration(offNs.Load())) }
	ol, err := ledger.New(ledger.Config{ID: 1, Clock: clock, Rand: rand.New(rand.NewSource(cfg.Seed ^ 0xace1))})
	if err != nil {
		return nil, err
	}
	defer ol.Close()
	dir := wire.NewDirectory()
	dir.Register(1, &wire.Loopback{L: ol})
	agg, err := aggregator.New(aggregator.Config{
		Name:            "adversary",
		Unlabeled:       aggregator.RejectUnlabeled,
		Clock:           clock,
		RecheckInterval: time.Hour,
	}, dir)
	if err != nil {
		return nil, err
	}
	cam := camera.New(&wire.Loopback{L: ol}, "local://1", nil)

	out := newAdvOutcome()
	type victim struct {
		owned      *camera.Owned
		derivative *photo.Image
	}
	victims := make([]victim, cfg.RaceVictims)
	wmCfg := watermark.DefaultConfig()
	for i := range victims {
		labeled, owned, err := cam.ClaimAndLabel(cam.Shoot(int64(100+i), 192, 128))
		if err != nil {
			return nil, err
		}
		res, err := agg.Upload(labeled)
		if err != nil || !res.Accepted {
			return nil, fmt.Errorf("victim %d upload: %+v %v", i, res, err)
		}
		erased, err := watermark.Erase(labeled, wmCfg, int64(i+1))
		if err != nil {
			return nil, err
		}
		otherCam := camera.New(&wire.Loopback{L: ol}, "local://1", nil)
		relabeled, _, err := otherCam.ClaimAndLabel(erased)
		if err != nil {
			return nil, err
		}
		victims[i] = victim{owned: owned, derivative: relabeled}
		out.hashU64(binary.BigEndian.Uint64(owned.ID.Rec[:8]))
		if i%2 == 0 {
			if err := cam.Revoke(owned.ID); err != nil {
				return nil, err
			}
		}
	}
	fresh := make([]*photo.Image, cfg.RaceFresh)
	for i := range fresh {
		labeled, _, err := cam.ClaimAndLabel(cam.Shoot(int64(500+i), 192, 128))
		if err != nil {
			return nil, err
		}
		fresh[i] = labeled
	}

	serveLat := func(id ids.PhotoID) {
		t0 := time.Now()
		_, _ = agg.Serve(id)
		out.lat = append(out.lat, time.Since(t0))
	}
	var freshFails atomic.Uint64
	if attack {
		var wg sync.WaitGroup
		var latMu sync.Mutex
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(victims); i += 3 {
					agg.TakeDown(victims[i].owned.ID)
				}
			}(w)
		}
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for lap := 0; lap < 6; lap++ {
					offNs.Add(int64(2 * time.Hour))
					for i := range victims {
						t0 := time.Now()
						_, _ = agg.Serve(victims[i].owned.ID)
						d := time.Since(t0)
						latMu.Lock()
						out.lat = append(out.lat, d)
						latMu.Unlock()
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for lap := 0; lap < 4; lap++ {
				_, _ = agg.RecheckAll()
			}
		}()
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(fresh); i += 2 {
					if res, err := agg.Upload(fresh[i]); err != nil || !res.Accepted {
						freshFails.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
	} else {
		// Control twin: identical operations, serial order.
		for i := range victims {
			agg.TakeDown(victims[i].owned.ID)
		}
		offNs.Add(int64(2 * time.Hour))
		for lap := 0; lap < 2; lap++ {
			for i := range victims {
				serveLat(victims[i].owned.ID)
			}
			if _, err := agg.RecheckAll(); err != nil {
				return nil, err
			}
		}
		for i := range fresh {
			if res, err := agg.Upload(fresh[i]); err != nil || !res.Accepted {
				freshFails.Add(1)
			}
		}
	}

	// Post-quiescence invariants — the always-enforced gates.
	m := agg.MetricsSnapshot()
	var denied uint64
	for _, n := range m.Denied {
		denied += n
	}
	if m.Uploads != m.Accepted+denied {
		return nil, fmt.Errorf("race attack=%v: conservation broken: Uploads=%d Accepted=%d ΣDenied=%d",
			attack, m.Uploads, m.Accepted, denied)
	}
	for i := range victims {
		if agg.Hosts(victims[i].owned.ID) {
			return nil, fmt.Errorf("race attack=%v: victim %d still hosted after takedown storm", attack, i)
		}
		out.hashU64(uint64(i), 0) // victim gone
	}
	derivativeDenied := 0
	for i := range victims {
		res, err := agg.Upload(victims[i].derivative)
		if err != nil {
			return nil, err
		}
		accepted := uint64(0)
		if res.Accepted {
			accepted = 1
		} else {
			derivativeDenied++
		}
		out.hashU64(accepted)
	}
	if derivativeDenied > 0 {
		return nil, fmt.Errorf("race attack=%v: %d dead-ID derivative denials survived the takedown race", attack, derivativeDenied)
	}
	out.requests = cfg.RaceFresh + cfg.RaceVictims
	out.failures = int(freshFails.Load()) + derivativeDenied
	out.extra["rechecks"] = float64(m.Rechecks)
	out.extra["taken_down"] = float64(m.TakenDown)
	out.extra["fresh_upload_failures"] = float64(freshFails.Load())
	out.hashU64(uint64(freshFails.Load()))
	return out, nil
}

func runAdvRace(cfg adversaryConfig, report *advReport) error {
	note := "hash: victim population + post-quiescence hosted set, derivative decisions and conservation; " +
		"racy-phase recheck/serve counts are scheduling, reported unhashed; latency is the Serve path under the storm"
	for _, attack := range []bool{true, false} {
		first, err := advRaceOnce(cfg, attack)
		if err != nil {
			return err
		}
		second, err := advRaceOnce(cfg, attack)
		if err != nil {
			return fmt.Errorf("replay: %w", err)
		}
		arm := advArmOf("race-appeal", !attack, note, first, second)
		report.Arms = append(report.Arms, arm)
		if attack {
			report.Gates["race_conservation_and_no_dead_id_denials"] = arm.Failures == 0
		}
		fmt.Printf("%-34s attack=%-5v avail %6.2f%%  serve p99 %7.3fms  rechecks %d  taken down %d  stable=%v\n",
			"adversary: race-appeal", attack, 100*arm.Availability, arm.P99Ms,
			int(arm.Extra["rechecks"]), int(arm.Extra["taken_down"]), arm.TraceStable)
	}
	return nil
}

// ---------------------------------------------------------------------

// runAdversary executes all four attacks (each with its control twin),
// enforces the gates, and writes the report.
func runAdversary(cfg adversaryConfig) (*advReport, error) {
	report := &advReport{
		Seed:       cfg.Seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Gates:      map[string]bool{},
		Enforced:   cfg.Enforce,
		Note: "four seeded attack generators, each with a benign control twin of identical volume; every " +
			"sub-arm runs twice per seed and trace_stable compares the decision hashes (request streams + " +
			"scheduling-independent outcome surfaces); contract gates always hold, envelope gates " +
			"(p99 ratios, availability floors) are asserted when gates_enforced",
	}
	if err := runAdvIndexFlood(cfg, report); err != nil {
		return nil, err
	}
	if err := runAdvHerd(cfg, report); err != nil {
		return nil, err
	}
	if err := runAdvStampede(cfg, report); err != nil {
		return nil, err
	}
	if err := runAdvRace(cfg, report); err != nil {
		return nil, err
	}

	for _, a := range report.Arms {
		if !a.TraceStable {
			return nil, fmt.Errorf("adversary: %s (control=%v) trace unstable — two seed-%d runs diverged",
				a.Arm, a.Control, cfg.Seed)
		}
	}
	if cfg.Enforce {
		var failed []string
		for name, ok := range report.Gates {
			if !ok {
				failed = append(failed, name)
			}
		}
		if len(failed) > 0 {
			sort.Strings(failed)
			return nil, fmt.Errorf("adversary: gates failed: %v", failed)
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(cfg.Out, append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	fmt.Printf("wrote %s\n", cfg.Out)
	return report, nil
}
