package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/obs"
	"irs/internal/parallel"
	"irs/internal/proxy"
)

// The -obs-compare harness is the observability layer's overhead guard:
// the same -serve workload (direct transport, batched pages, sharded
// ledger) runs with the obs registry attached and detached, interleaved
// rep by rep so thermal and cache drift hit both arms equally. Each
// arm keeps its best (minimum) p99 across reps — the standard
// min-of-N noise floor — and the report asserts the instrumented arm's
// p99 within -obs-tolerance of the bare one. check.sh runs this as a
// smoke; the committed artifact is BENCH_obs.json.

// obsConfig carries the -obs-compare flags (sharing the -serve-*
// workload shape).
type obsConfig struct {
	Out       string
	Workers   int
	IDs       int
	Batch     int
	Pages     int
	Revoked   float64
	Zipf      float64
	Seed      int64
	Reps      int
	Tolerance float64 // fractional p99 headroom, e.g. 0.05
}

// obsRep is one rep of one arm.
type obsRep struct {
	P99Ms     float64 `json:"p99_ms"`
	MeanMs    float64 `json:"mean_ms"`
	IDsPerSec float64 `json:"ids_per_sec"`
}

// obsCompareArm is one arm's reps plus its min-of-N summary.
type obsCompareArm struct {
	Arm    string   `json:"arm"` // "obs-on" or "obs-off"
	Reps   []obsRep `json:"reps"`
	P99Ms  float64  `json:"p99_ms"`  // min across reps
	MeanMs float64  `json:"mean_ms"` // min across reps
}

// obsCompareReport is the BENCH_obs.json document.
type obsCompareReport struct {
	Seed       int64   `json:"seed"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
	IDs        int     `json:"ids"`
	Reps       int     `json:"reps"`
	Tolerance  float64 `json:"tolerance"`

	Off obsCompareArm `json:"off"`
	On  obsCompareArm `json:"on"`

	// RatioP99 is on/off of the min-of-N p99s; the acceptance gate is
	// RatioP99 <= 1+Tolerance.
	RatioP99        float64 `json:"ratio_p99"`
	WithinTolerance bool    `json:"within_tolerance"`

	// Metrics is the final obs-on rep's registry snapshot, proof the
	// instrumented arm actually collected what it claims to.
	Metrics []obs.SeriesSnapshot `json:"metrics,omitempty"`
	Note    string               `json:"note"`
}

// runObsRep drives the workload once against a fresh validator. reg
// nil is the obs-off arm (the validator falls back to its private
// registry with latency collection disabled — the seed-cost path).
func runObsRep(cfg obsConfig, backend *serveLedger, reg *obs.Registry) (obsRep, error) {
	v := proxy.NewValidator(proxy.Config{Stripes: 16, Obs: reg}, func(id ids.PhotoID) (*ledger.StatusProof, error) {
		return backend.direct.Status(id)
	})
	v.SetBatchQuery(func(_ ids.LedgerID, page []ids.PhotoID) ([]*ledger.StatusProof, error) {
		return backend.direct.StatusBatch(page)
	})

	lats := make([][]time.Duration, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(parallel.SplitSeed(cfg.Seed, w)))
			zipf := rand.NewZipf(rng, cfg.Zipf, 1, uint64(len(backend.ids)-1))
			page := make([]ids.PhotoID, cfg.Batch)
			lats[w] = make([]time.Duration, 0, cfg.Pages)
			for p := 0; p < cfg.Pages; p++ {
				for i := range page {
					page[i] = backend.ids[zipf.Uint64()]
				}
				t0 := time.Now()
				if _, err := v.ValidateBatch(page); err != nil {
					errs[w] = err
					return
				}
				lats[w] = append(lats[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return obsRep{}, err
		}
	}

	var all []time.Duration
	for _, ws := range lats {
		all = append(all, ws...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	var sum time.Duration
	for _, d := range all {
		sum += d
	}
	rep := obsRep{IDsPerSec: float64(len(all)*cfg.Batch) / wall.Seconds()}
	if len(all) > 0 {
		rep.P99Ms = float64(all[int(0.99*float64(len(all)-1))].Microseconds()) / 1000
		rep.MeanMs = float64(sum.Microseconds()) / float64(len(all)) / 1000
	}
	return rep, nil
}

// runObsCompare executes both arms interleaved and writes the report,
// failing when the instrumented arm exceeds the tolerance.
func runObsCompare(cfg obsConfig) error {
	if cfg.Reps <= 0 {
		cfg.Reps = 3
	}
	backend, err := setupServeLedger(serveConfig{
		Workers: cfg.Workers, IDs: cfg.IDs, Batch: cfg.Batch, Pages: cfg.Pages,
		Revoked: cfg.Revoked, Zipf: cfg.Zipf, Seed: cfg.Seed,
	}, 0)
	if err != nil {
		return err
	}
	defer backend.close()

	report := obsCompareReport{
		Seed:       cfg.Seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    cfg.Workers,
		IDs:        cfg.IDs,
		Reps:       cfg.Reps,
		Tolerance:  cfg.Tolerance,
		Off:        obsCompareArm{Arm: "obs-off"},
		On:         obsCompareArm{Arm: "obs-on"},
		Note: "same -serve workload (direct transport, batched pages) with and without an obs " +
			"registry attached, interleaved rep by rep; each arm reports its min-of-reps p99 " +
			"and the gate is on/off <= 1+tolerance",
	}
	var lastSnap []obs.SeriesSnapshot
	for r := 0; r < cfg.Reps; r++ {
		off, err := runObsRep(cfg, backend, nil)
		if err != nil {
			return fmt.Errorf("obs-off rep %d: %w", r, err)
		}
		report.Off.Reps = append(report.Off.Reps, off)
		reg := obs.NewRegistry()
		on, err := runObsRep(cfg, backend, reg)
		if err != nil {
			return fmt.Errorf("obs-on rep %d: %w", r, err)
		}
		report.On.Reps = append(report.On.Reps, on)
		lastSnap = reg.Snapshot()
		fmt.Printf("rep %d: off p99 %7.3fms mean %7.3fms | on p99 %7.3fms mean %7.3fms\n",
			r, off.P99Ms, off.MeanMs, on.P99Ms, on.MeanMs)
	}
	report.Metrics = lastSnap
	minArm := func(a *obsCompareArm) {
		a.P99Ms, a.MeanMs = a.Reps[0].P99Ms, a.Reps[0].MeanMs
		for _, r := range a.Reps[1:] {
			if r.P99Ms < a.P99Ms {
				a.P99Ms = r.P99Ms
			}
			if r.MeanMs < a.MeanMs {
				a.MeanMs = r.MeanMs
			}
		}
	}
	minArm(&report.Off)
	minArm(&report.On)
	if report.Off.P99Ms > 0 {
		report.RatioP99 = report.On.P99Ms / report.Off.P99Ms
	}
	report.WithinTolerance = report.RatioP99 <= 1+cfg.Tolerance
	fmt.Printf("obs-compare: off p99 %.3fms, on p99 %.3fms, ratio %.3f (tolerance %.0f%%): within=%v\n",
		report.Off.P99Ms, report.On.P99Ms, report.RatioP99, 100*cfg.Tolerance, report.WithinTolerance)

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.Out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", cfg.Out)
	if !report.WithinTolerance {
		return fmt.Errorf("obs overhead gate: on p99 %.3fms vs off %.3fms exceeds %.0f%% tolerance",
			report.On.P99Ms, report.Off.P99Ms, 100*cfg.Tolerance)
	}
	return nil
}
