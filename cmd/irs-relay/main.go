// Command irs-relay runs one hop of the oblivious validation path
// (paper §4.2, the ODoH/Private Relay structure).
//
// Egress mode decrypts sealed queries and resolves them against a
// proxy-style validator backed by the configured ledgers; it never sees
// client identity:
//
//	irs-relay -mode egress -addr :8332 -ledger 1=http://localhost:8330
//
// Ingress mode forwards sealed blobs to an egress with all client
// identification stripped; it never sees the query:
//
//	irs-relay -mode ingress -addr :8333 -egress http://localhost:8332
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/proxy"
	"irs/internal/relay"
	"irs/internal/wire"
)

type ledgerList map[ids.LedgerID]string

func (l ledgerList) String() string { return fmt.Sprintf("%v", map[ids.LedgerID]string(l)) }

func (l ledgerList) Set(v string) error {
	id, url, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want id=url, got %q", v)
	}
	n, err := strconv.ParseUint(id, 10, 32)
	if err != nil || n == 0 {
		return fmt.Errorf("bad ledger id %q", id)
	}
	l[ids.LedgerID(n)] = url
	return nil
}

func main() {
	ledgers := ledgerList{}
	var (
		mode            = flag.String("mode", "", "egress or ingress")
		addr            = flag.String("addr", ":8332", "listen address")
		egressURL       = flag.String("egress", "", "egress base URL (ingress mode)")
		refreshInterval = flag.Duration("refresh-interval", time.Hour, "ledger filter refresh interval (egress mode)")
	)
	flag.Var(ledgers, "ledger", "ledger endpoint as id=url (egress mode, repeatable)")
	flag.Parse()

	var handler http.Handler
	switch *mode {
	case "egress":
		if len(ledgers) == 0 {
			fmt.Fprintln(os.Stderr, "irs-relay: egress mode needs at least one -ledger id=url")
			os.Exit(2)
		}
		dir := wire.NewDirectory()
		for id, url := range ledgers {
			dir.Register(id, wire.NewClient(url, ""))
		}
		val := proxy.NewValidator(proxy.Config{UseFilter: true, CacheCapacity: 65536},
			func(id ids.PhotoID) (*ledger.StatusProof, error) {
				c, err := dir.For(id)
				if err != nil {
					return nil, err
				}
				return c.Status(id)
			})
		if err := val.RefreshFilters(dir); err != nil {
			log.Printf("irs-relay: initial filter refresh: %v (continuing)", err)
		}
		go func() {
			t := time.NewTicker(*refreshInterval)
			defer t.Stop()
			for range t.C {
				if err := val.RefreshFilters(dir); err != nil {
					log.Printf("irs-relay: filter refresh: %v", err)
				}
			}
		}()
		eg, err := relay.NewEgress(func(id ids.PhotoID) (ledger.State, []byte, error) {
			res, err := val.Validate(id)
			if err != nil {
				return ledger.StateUnknown, nil, err
			}
			var proof []byte
			if res.Proof != nil {
				proof = res.Proof.Marshal()
			}
			return res.State, proof, nil
		})
		if err != nil {
			log.Fatalf("irs-relay: %v", err)
		}
		handler = relay.NewEgressServer(eg)
		log.Printf("irs-relay: egress serving on %s for %d ledgers (key at /v1/relay-key)", *addr, len(ledgers))

	case "ingress":
		if *egressURL == "" {
			fmt.Fprintln(os.Stderr, "irs-relay: ingress mode needs -egress")
			os.Exit(2)
		}
		handler = relay.NewIngress(*egressURL)
		log.Printf("irs-relay: ingress serving on %s, forwarding to %s", *addr, *egressURL)

	default:
		fmt.Fprintln(os.Stderr, "irs-relay: -mode must be egress or ingress")
		os.Exit(2)
	}

	srv := &http.Server{Addr: *addr, Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("irs-relay: shutting down")
		srv.Close()
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("irs-relay: %v", err)
	}
}
