// Command irsctl is the owner-side IRS tool: the "owner-controlled
// software" of paper §3.2. It shoots (synthesizes) photos, claims and
// labels them against a ledger, revokes and unrevokes, checks status,
// extracts labels from image files, and audits ledger honesty.
//
// Usage:
//
//	irsctl -ledger http://localhost:8330 -keystore ~/.irs/keys.json <command> [args]
//
// Commands:
//
//	shoot <seed> <out.irsp>        synthesize, claim, label, write IRSP file
//	claim <in.irsp> <out.irsp>     claim an existing IRSP photo and label it
//	revoke <id>                    revoke an owned photo
//	unrevoke <id>                  re-activate an owned photo
//	status <id>                    query revocation status
//	inspect <in.irsp|in.pgm>       extract the label (metadata + watermark)
//	list                           list owned photo identifiers
//	appeal <orig> <copy> <id> [url] lodge a §3.2 complaint against a claim
//	audit                          probe the ledger for honest answers (§5)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"irs/internal/appeals"
	"irs/internal/camera"
	"irs/internal/ids"
	"irs/internal/photo"
	"irs/internal/watermark"
	"irs/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "irsctl: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		ledgerURL = flag.String("ledger", "http://localhost:8330", "ledger base URL")
		storePath = flag.String("keystore", "irs-keys.json", "key store file (owner's private keys)")
		size      = flag.String("size", "256x160", "synthesized photo size WxH")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		return fmt.Errorf("no command")
	}

	// LoadKeyStore binds the store to the path, so later mutations
	// persist automatically.
	store, err := camera.LoadKeyStore(*storePath)
	if err != nil {
		return err
	}
	cam := camera.New(wire.NewClient(*ledgerURL, ""), *ledgerURL, store)

	switch args[0] {
	case "shoot":
		if len(args) != 3 {
			return fmt.Errorf("usage: shoot <seed> <out.irsp>")
		}
		var seed int64
		if _, err := fmt.Sscanf(args[1], "%d", &seed); err != nil {
			return fmt.Errorf("bad seed %q", args[1])
		}
		var w, h int
		if _, err := fmt.Sscanf(*size, "%dx%d", &w, &h); err != nil {
			return fmt.Errorf("bad -size %q", *size)
		}
		im := cam.Shoot(seed, w, h)
		labeled, owned, err := cam.ClaimAndLabel(im)
		if err != nil {
			return err
		}
		if err := writeIRSP(args[2], labeled); err != nil {
			return err
		}
		// §3.2: "The owner safely stores the original photo, the private
		// key, and the identifier." The original's pixels are the
		// appeal-time evidence the claim timestamp covers, so vault it
		// next to the shareable labeled copy.
		origPath := args[2] + ".orig"
		if err := writeIRSP(origPath, im); err != nil {
			return err
		}
		fmt.Printf("claimed %s\n  ledger    %s\n  timestamp %s\n  wrote     %s (shareable)\n  vaulted   %s (appeal evidence)\n",
			owned.ID, *ledgerURL, owned.Receipt.Timestamp.Time, args[2], origPath)
		return nil

	case "claim":
		if len(args) != 3 {
			return fmt.Errorf("usage: claim <in.irsp> <out.irsp>")
		}
		im, err := readImage(args[1])
		if err != nil {
			return err
		}
		labeled, owned, err := cam.ClaimAndLabel(im)
		if err != nil {
			return err
		}
		if err := writeIRSP(args[2], labeled); err != nil {
			return err
		}
		fmt.Printf("claimed %s → %s\n", owned.ID, args[2])
		return nil

	case "revoke", "unrevoke":
		if len(args) != 2 {
			return fmt.Errorf("usage: %s <id>", args[0])
		}
		id, err := ids.Parse(args[1])
		if err != nil {
			return err
		}
		if args[0] == "revoke" {
			err = cam.Revoke(id)
		} else {
			err = cam.Unrevoke(id)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%sd %s\n", args[0], id)
		return nil

	case "status":
		if len(args) != 2 {
			return fmt.Errorf("usage: status <id>")
		}
		id, err := ids.Parse(args[1])
		if err != nil {
			return err
		}
		proof, err := wire.NewClient(*ledgerURL, "").Status(id)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %s (as of %s)\n", id, proof.State, proof.IssuedAt)
		return nil

	case "inspect":
		if len(args) != 2 {
			return fmt.Errorf("usage: inspect <file>")
		}
		im, err := readImage(args[1])
		if err != nil {
			return err
		}
		if s := im.Meta.Get(photo.KeyIRSID); s != "" {
			fmt.Printf("metadata label: %s (ledger %s)\n", s, im.Meta.Get(photo.KeyIRSLedgerURL))
		} else {
			fmt.Println("metadata label: none")
		}
		cfg := watermark.DefaultConfig()
		res, err := watermark.ExtractAligned(im, cfg)
		if err != nil {
			res, err = watermark.Extract(im, cfg)
		}
		if err != nil {
			fmt.Println("watermark:      none found")
		} else {
			fmt.Printf("watermark:      %s (margin %.2f)\n", ids.FromBytes(res.Payload), res.Margin)
		}
		return nil

	case "list":
		for _, id := range store.List() {
			fmt.Println(id)
		}
		return nil

	case "appeal":
		// appeal <original-file> <copy-file> <contested-id> [<ledger-url>]
		// The original must be a photo this keystore owns (its label's
		// identifier locates the claim receipt with the timestamp).
		if len(args) < 4 || len(args) > 5 {
			return fmt.Errorf("usage: appeal <original.irsp> <copy.irsp> <contested-id> [<appeal-ledger-url>]")
		}
		orig, err := readImage(args[1])
		if err != nil {
			return fmt.Errorf("reading original: %w", err)
		}
		copyImg, err := readImage(args[2])
		if err != nil {
			return fmt.Errorf("reading copy: %w", err)
		}
		contested, err := ids.Parse(args[3])
		if err != nil {
			return fmt.Errorf("contested id: %w", err)
		}
		appealURL := *ledgerURL
		if len(args) == 5 {
			appealURL = args[4]
		}
		return lodgeAppeal(store, orig, copyImg, contested, appealURL)

	case "audit":
		rep, err := cam.Audit(1)
		if err != nil {
			return err
		}
		if rep.Healthy {
			fmt.Println("ledger audit: healthy")
			return nil
		}
		for _, f := range rep.Failures {
			fmt.Printf("ledger audit FAILURE: %s\n", f)
		}
		return fmt.Errorf("ledger failed audit")

	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func writeIRSP(path string, im *photo.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := photo.EncodeIRSP(f, im); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readImage(path string) (*photo.Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	im, err := photo.DecodeIRSP(f)
	if err == nil {
		return im, nil
	}
	if _, serr := f.Seek(0, 0); serr != nil {
		return nil, serr
	}
	return photo.DecodePNM(f)
}

// lodgeAppeal locates the claim evidence for the original (by the
// original's metadata or watermark label, then the keystore) and posts
// the complaint to the contested claim's ledger.
func lodgeAppeal(store *camera.KeyStore, orig, copyImg *photo.Image, contested ids.PhotoID, appealURL string) error {
	// Find which of our claims covers the original.
	var owned *camera.Owned
	if s := orig.Meta.Get(photo.KeyIRSID); s != "" {
		if id, err := ids.Parse(s); err == nil {
			owned, _ = store.Get(id)
		}
	}
	if owned == nil {
		// Fall back to matching the content hash against the keystore —
		// the original may be the unlabeled capture.
		hash := orig.ContentHash()
		for _, id := range store.List() {
			if o, ok := store.Get(id); ok && o.ContentHash == hash {
				owned = o
				break
			}
		}
	}
	if owned == nil {
		return fmt.Errorf("no claim in the keystore covers this original")
	}
	if owned.Receipt.Timestamp == nil {
		return fmt.Errorf("keystore record for %s has no timestamp token", owned.ID)
	}

	encode := func(im *photo.Image) ([]byte, error) {
		var buf bytes.Buffer
		if err := photo.EncodeIRSP(&buf, im); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	origBytes, err := encode(orig)
	if err != nil {
		return err
	}
	copyBytes, err := encode(copyImg)
	if err != nil {
		return err
	}
	req := appeals.ComplaintRequest{
		Original:       origBytes,
		OriginalToken:  owned.Receipt.Timestamp.Marshal(),
		OriginalLedger: uint32(owned.ID.Ledger),
		Copy:           copyBytes,
		ContestedID:    contested.String(),
	}
	body, err := json.Marshal(&req)
	if err != nil {
		return err
	}
	resp, err := http.Post(appealURL+"/v1/appeal", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("appeal rejected: status %d: %s", resp.StatusCode, raw)
	}
	var verdict appeals.VerdictResponse
	if err := json.NewDecoder(resp.Body).Decode(&verdict); err != nil {
		return err
	}
	fmt.Printf("verdict: %s (similarity %.3f)\n%s\n", verdict.Outcome, verdict.Similarity, verdict.Detail)
	if !verdict.Upheld {
		return fmt.Errorf("appeal not upheld")
	}
	return nil
}
