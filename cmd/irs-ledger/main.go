// Command irs-ledger runs an IRS ledger server: the timestamped claim
// database of paper §3.1, serving the HTTP protocol in internal/wire.
//
// Usage:
//
//	irs-ledger -id 1 -addr :8330 -dir ./ledger-data \
//	           -snapshot-interval 1h -admin-token sekrit
//
// The server rebuilds its revocation Bloom filter snapshot on the
// configured interval (the paper's hourly cycle, §4.4) and syncs its
// write-ahead log on the same timer.
package main

import (
	"crypto/ed25519"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"irs/internal/appeals"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/wire"
)

// trustList collects repeated -trust-ledger id=url flags: peer ledgers
// whose claim timestamps this ledger's appeals desk will accept as
// complainant evidence.
type trustList map[ids.LedgerID]string

func (l trustList) String() string { return fmt.Sprintf("%v", map[ids.LedgerID]string(l)) }

func (l trustList) Set(v string) error {
	id, url, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want id=url, got %q", v)
	}
	n, err := strconv.ParseUint(id, 10, 32)
	if err != nil || n == 0 {
		return fmt.Errorf("bad ledger id %q", id)
	}
	l[ids.LedgerID(n)] = url
	return nil
}

func main() {
	trusted := trustList{}
	var (
		id            = flag.Uint("id", 1, "ledger identifier (nonzero; rides in every issued photo id)")
		addr          = flag.String("addr", ":8330", "listen address")
		dir           = flag.String("dir", "", "persistence directory (empty = in-memory)")
		adminToken    = flag.String("admin-token", "", "bearer token for the permanent-revoke admin endpoint (empty = disabled)")
		nonRevocable  = flag.Bool("non-revocable", false, "refuse revocation (§5 human-rights ledger policy)")
		snapInterval  = flag.Duration("snapshot-interval", time.Hour, "revocation filter snapshot rebuild interval")
		fpr           = flag.Float64("filter-fpr", 0.02, "filter snapshot target false-positive rate")
		enableAppeals = flag.Bool("appeals", true, "serve the public /v1/appeal complaint endpoint")
		debug         = flag.Bool("debug", false, "mount GET /debug/metrics (Prometheus text) and /debug/pprof")
		engine        = flag.String("engine", "auto", "storage engine: auto, segments (group-commit WAL + sorted segments), or json (legacy)")
		walSync       = flag.String("wal-sync", "os", "wal durability: os (fsync on the snapshot timer) or batch (group-commit fsync per append batch)")
	)
	flag.Var(trusted, "trust-ledger", "peer ledger whose timestamps appeals accept, as id=url (repeatable)")
	flag.Parse()
	if *id == 0 {
		fmt.Fprintln(os.Stderr, "irs-ledger: -id must be nonzero")
		os.Exit(2)
	}
	var eng ledger.Engine
	switch *engine {
	case "auto":
		eng = ledger.EngineAuto
	case "segments":
		eng = ledger.EngineSegments
	case "json":
		eng = ledger.EngineJSON
	default:
		fmt.Fprintf(os.Stderr, "irs-ledger: -engine must be auto, segments, or json (got %q)\n", *engine)
		os.Exit(2)
	}
	var sync ledger.WALSyncMode
	switch *walSync {
	case "os":
		sync = ledger.WALSyncOS
	case "batch":
		sync = ledger.WALSyncBatch
	default:
		fmt.Fprintf(os.Stderr, "irs-ledger: -wal-sync must be os or batch (got %q)\n", *walSync)
		os.Exit(2)
	}

	l, err := ledger.New(ledger.Config{
		ID:           ids.LedgerID(*id),
		Dir:          *dir,
		NonRevocable: *nonRevocable,
		FilterFPR:    *fpr,
		Engine:       eng,
		WALSync:      sync,
	})
	if err != nil {
		log.Fatalf("irs-ledger: %v", err)
	}
	defer l.Close()

	// Initial snapshot so proxies can pull a filter immediately.
	if _, err := l.BuildSnapshot(); err != nil {
		log.Fatalf("irs-ledger: initial snapshot: %v", err)
	}
	go func() {
		t := time.NewTicker(*snapInterval)
		defer t.Stop()
		for range t.C {
			if seq, err := l.BuildSnapshot(); err != nil {
				log.Printf("irs-ledger: snapshot: %v", err)
			} else {
				claims, revoked := l.Count()
				log.Printf("irs-ledger: snapshot epoch %d (%d claims, %d revoked)", seq, claims, revoked)
			}
			if err := l.Sync(); err != nil {
				log.Printf("irs-ledger: wal sync: %v", err)
			}
			// Fold the log into a snapshot once it outgrows 4 MiB.
			if sz, err := l.WALSize(); err == nil && sz > 4<<20 {
				if err := l.Compact(); err != nil {
					log.Printf("irs-ledger: compaction: %v", err)
				} else {
					log.Printf("irs-ledger: compacted %d-byte wal", sz)
				}
			}
		}
	}()

	handler := http.Handler(wire.NewServerOpts(l, *adminToken, wire.ServerOptions{Debug: *debug}))
	if *enableAppeals {
		adj := appeals.NewAdjudicator(l, nil)
		for peerID, url := range trusted {
			keys, err := wire.NewClient(url, "").Keys()
			if err != nil {
				log.Fatalf("irs-ledger: fetching keys from trusted ledger %d at %s: %v", peerID, url, err)
			}
			adj.TrustLedger(peerID, ed25519.PublicKey(keys.TimestampKey))
			log.Printf("irs-ledger: trusting timestamps from ledger %d (%s)", peerID, url)
		}
		mux := http.NewServeMux()
		mux.Handle("/v1/appeal", appeals.NewServer(adj))
		mux.Handle("/", handler)
		handler = mux
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("irs-ledger: shutting down")
		srv.Close()
	}()
	claims, revoked := l.Count()
	log.Printf("irs-ledger: ledger %d serving on %s (%d claims, %d revoked, dir=%q)",
		*id, *addr, claims, revoked, *dir)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("irs-ledger: %v", err)
	}
}
