// Command irs-site runs an IRS-supporting content aggregator — the
// §3.2 "eventual solution" site as a real service: the upload pipeline
// (label checks, ledger validation, custodial claiming, robust-hash
// derivative defense), hosted serving with freshness proofs, and the
// periodic revalidation pass that takes revoked content down.
//
// Usage:
//
//	irs-site -addr :8334 -ledger 1=http://localhost:8330 \
//	         -custodial-ledger 1 -recheck-interval 1h
//
// Endpoints: POST /v1/upload (IRSP body), GET /v1/photo?id=,
// POST /v1/recheck, GET /v1/stats.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"irs/internal/aggregator"
	"irs/internal/ids"
	"irs/internal/wire"
)

type ledgerList map[ids.LedgerID]string

func (l ledgerList) String() string { return fmt.Sprintf("%v", map[ids.LedgerID]string(l)) }

func (l ledgerList) Set(v string) error {
	id, url, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want id=url, got %q", v)
	}
	n, err := strconv.ParseUint(id, 10, 32)
	if err != nil || n == 0 {
		return fmt.Errorf("bad ledger id %q", id)
	}
	l[ids.LedgerID(n)] = url
	return nil
}

func main() {
	ledgers := ledgerList{}
	var (
		name            = flag.String("name", "irs-site", "site name for logs")
		addr            = flag.String("addr", ":8334", "listen address")
		custodial       = flag.Uint("custodial-ledger", 0, "ledger id for custodial claims (0 = reject unlabeled uploads)")
		recheckInterval = flag.Duration("recheck-interval", time.Hour, "hosted-content revalidation interval")
	)
	flag.Var(ledgers, "ledger", "ledger endpoint as id=url (repeatable)")
	flag.Parse()
	if len(ledgers) == 0 {
		fmt.Fprintln(os.Stderr, "irs-site: at least one -ledger id=url required")
		os.Exit(2)
	}

	dir := wire.NewDirectory()
	for id, url := range ledgers {
		dir.Register(id, wire.NewClient(url, ""))
	}
	cfg := aggregator.Config{
		Name:            *name,
		Unlabeled:       aggregator.RejectUnlabeled,
		RecheckInterval: *recheckInterval,
	}
	if *custodial != 0 {
		url, ok := ledgers[ids.LedgerID(*custodial)]
		if !ok {
			fmt.Fprintf(os.Stderr, "irs-site: -custodial-ledger %d is not among -ledger entries\n", *custodial)
			os.Exit(2)
		}
		cfg.Unlabeled = aggregator.CustodialClaim
		cfg.CustodialLedger = wire.NewClient(url, "")
		cfg.CustodialLedgerURL = url
	}
	agg, err := aggregator.New(cfg, dir)
	if err != nil {
		log.Fatalf("irs-site: %v", err)
	}

	go func() {
		t := time.NewTicker(*recheckInterval)
		defer t.Stop()
		for range t.C {
			down, err := agg.RecheckAll()
			if err != nil {
				log.Printf("irs-site: recheck: %v", err)
			}
			if down > 0 {
				log.Printf("irs-site: recheck took down %d revoked item(s); %d hosted", down, agg.HostedCount())
			}
		}
	}()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           aggregator.NewServer(agg),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("irs-site: shutting down")
		srv.Close()
	}()
	log.Printf("irs-site: %q serving on %s (%d ledgers, custodial=%v, recheck every %s)",
		*name, *addr, len(ledgers), cfg.Unlabeled == aggregator.CustodialClaim, *recheckInterval)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("irs-site: %v", err)
	}
}
